"""Unit tests for repro.core.bfhrf."""

import pytest

from repro.core.bfhrf import bfhrf_average_rf, bfhrf_average_rf_stream, build_bfh
from repro.core.sequential import sequential_average_rf
from repro.core.variants import size_filter_transform
from repro.hashing.bfh import BipartitionFrequencyHash
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import make_collection


class TestBuildBFH:
    def test_serial_build(self, medium_collection):
        bfh = build_bfh(medium_collection)
        assert bfh.n_trees == len(medium_collection)

    def test_parallel_build_matches_serial(self, medium_collection):
        serial = build_bfh(medium_collection)
        parallel = build_bfh(medium_collection, n_workers=2)
        assert parallel.counts == serial.counts
        assert parallel.total == serial.total
        assert parallel.n_trees == serial.n_trees

    def test_parallel_build_with_transform(self, medium_collection):
        transform = size_filter_transform(min_size=3)
        serial = build_bfh(medium_collection, transform=transform)
        parallel = build_bfh(medium_collection, n_workers=2, transform=transform)
        assert parallel.counts == serial.counts

    def test_streaming_source(self, medium_collection):
        bfh = build_bfh(iter(medium_collection))
        assert bfh.n_trees == len(medium_collection)

    def test_empty_raises_serial_and_parallel(self):
        with pytest.raises(CollectionError) as serial:
            build_bfh([])
        with pytest.raises(CollectionError) as parallel:
            build_bfh([], n_workers=2)
        # Both paths must agree on the error, not just its type.
        assert str(serial.value) == str(parallel.value)


class TestAverageRF:
    def test_q_is_r_default(self, medium_collection):
        expected = sequential_average_rf(medium_collection, medium_collection)
        assert bfhrf_average_rf(medium_collection) == pytest.approx(expected)

    def test_parallel_query(self, medium_collection):
        expected = bfhrf_average_rf(medium_collection)
        for workers in (2, 4):
            got = bfhrf_average_rf(medium_collection, n_workers=workers)
            assert got == pytest.approx(expected)

    def test_parallel_chunking(self, medium_collection):
        expected = bfhrf_average_rf(medium_collection)
        got = bfhrf_average_rf(medium_collection, n_workers=2, chunk_size=1)
        assert got == pytest.approx(expected)

    def test_disparate_collections(self):
        trees = make_collection(12, 16, seed=71)
        q, r = trees[:5], trees[5:]
        expected = sequential_average_rf(q, r)
        assert bfhrf_average_rf(q, r) == pytest.approx(expected)
        assert bfhrf_average_rf(q, r, n_workers=2) == pytest.approx(expected)

    def test_empty_query(self, medium_collection):
        assert bfhrf_average_rf([], medium_collection) == []
        assert bfhrf_average_rf([], medium_collection, n_workers=2) == []

    def test_prebuilt_bfh_reused(self, medium_collection):
        bfh = build_bfh(medium_collection)
        a = bfhrf_average_rf(medium_collection[:3], bfh=bfh)
        b = bfhrf_average_rf(medium_collection[:3], medium_collection)
        assert a == pytest.approx(b)

    def test_transform_matches_sequential(self, medium_collection):
        transform = size_filter_transform(min_size=3)
        expected = sequential_average_rf(medium_collection, medium_collection,
                                         transform=transform)
        got = bfhrf_average_rf(medium_collection, transform=transform)
        assert got == pytest.approx(expected)
        got_parallel = bfhrf_average_rf(medium_collection, n_workers=2,
                                        transform=transform)
        assert got_parallel == pytest.approx(expected)

    def test_streaming_generator(self, medium_collection):
        bfh = build_bfh(iter(medium_collection))
        stream = bfhrf_average_rf_stream(iter(medium_collection), bfh)
        values = list(stream)
        assert values == pytest.approx(bfhrf_average_rf(medium_collection))

    def test_unweighted_trees(self):
        """BFHRF handles topology-only input (the Insect case HashRF choked on)."""
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        assert bfhrf_average_rf(trees) == [1.0, 1.0]
