"""Direct tests for the fork-payload pool infrastructure."""

import multiprocessing as mp

import pytest

from repro.core import parallel
from repro.core.parallel import fork_available, fork_payload_pool, payload, resolve_workers


def _read_payload(_index):
    return parallel.payload()


def _call_payload(value):
    return parallel.payload()(value)


def _sum_range(bounds):
    data = parallel.payload()
    return sum(data[bounds[0]:bounds[1]])


pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


class TestForkPayloadPool:
    def test_workers_inherit_payload(self):
        with fork_payload_pool(2, {"answer": 42}) as pool:
            results = pool.map(_read_payload, range(4))
        assert all(r == {"answer": 42} for r in results)

    def test_parent_global_cleared(self):
        with fork_payload_pool(2, ("secret",)) as pool:
            # The parent must not keep the payload referenced globally.
            assert payload() is None
            pool.map(_read_payload, range(2))

    def test_unpicklable_payload_crosses_fork(self):
        # Lambdas can't cross pickle; fork inheritance carries arbitrary
        # objects without serialization (workers call it, returning ints).
        fn = lambda x: x + 1  # noqa: E731
        with fork_payload_pool(2, fn) as pool:
            results = pool.map(_call_payload, range(4))
        assert results == [1, 2, 3, 4]

    def test_range_tasks(self):
        data = list(range(100))
        with fork_payload_pool(3, data) as pool:
            parts = pool.map(_sum_range, [(0, 50), (50, 100)])
        assert sum(parts) == sum(data)

    def test_sequential_pools_isolated(self):
        with fork_payload_pool(2, "first") as pool:
            first = pool.map(_read_payload, range(2))
        with fork_payload_pool(2, "second") as pool:
            second = pool.map(_read_payload, range(2))
        assert set(first) == {"first"}
        assert set(second) == {"second"}


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_defaults_to_cpu_count(self):
        assert resolve_workers(None) == mp.cpu_count()
        assert resolve_workers(0) == mp.cpu_count()
        assert resolve_workers(-1) == mp.cpu_count()
