"""Unit tests for repro.core.hashrf."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.hashrf import hashrf_average_rf, hashrf_matrix, next_prime
from repro.core.rf import robinson_foulds
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import collection_shapes, make_collection


class TestNextPrime:
    @pytest.mark.parametrize("n,expected", [
        (0, 2), (2, 2), (3, 3), (4, 5), (10, 11), (13, 13), (100, 101), (7919, 7919),
    ])
    def test_values(self, n, expected):
        assert next_prime(n) == expected


class TestExactMatrix:
    def test_doc_example(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        assert hashrf_matrix(trees).tolist() == [[0, 2], [2, 0]]

    def test_matrix_properties(self, medium_collection):
        m = hashrf_matrix(medium_collection)
        assert m.shape == (len(medium_collection),) * 2
        assert (m == m.T).all()
        assert (np.diag(m) == 0).all()
        assert (m >= 0).all()

    @settings(max_examples=15, deadline=None)
    @given(collection_shapes)
    def test_matches_pairwise_rf(self, shape):
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        m = hashrf_matrix(trees)
        for i in range(r):
            for j in range(r):
                assert m[i, j] == robinson_foulds(trees[i], trees[j])

    def test_empty_raises(self):
        with pytest.raises(CollectionError):
            hashrf_matrix([])

    def test_single_tree(self, medium_collection):
        assert hashrf_matrix(medium_collection[:1]).tolist() == [[0]]


class TestAverage:
    def test_average_is_row_mean(self, medium_collection):
        m = hashrf_matrix(medium_collection)
        expected = (m.sum(axis=1) / m.shape[0]).tolist()
        assert hashrf_average_rf(medium_collection) == pytest.approx(expected)


class TestLossyKeys:
    def test_wide_lossy_keys_exact(self, medium_collection):
        exact = hashrf_matrix(medium_collection, exact_keys=True)
        lossy = hashrf_matrix(medium_collection, exact_keys=False,
                              m2=1 << 48, rng=0)
        assert (exact == lossy).all()

    def test_narrow_keys_introduce_errors(self):
        trees = make_collection(16, 40, seed=91)
        exact = hashrf_matrix(trees, exact_keys=True)
        lossy = hashrf_matrix(trees, exact_keys=False, m2=2, rng=0)
        # With a 1-bit identifier, collisions must corrupt some distances,
        # always by *underestimating* (splits conflated = spurious sharing).
        assert (lossy <= exact).all()
        assert (lossy < exact).any()

    def test_lossy_deterministic_in_seed(self, medium_collection):
        a = hashrf_matrix(medium_collection, exact_keys=False, m2=16, rng=7)
        b = hashrf_matrix(medium_collection, exact_keys=False, m2=16, rng=7)
        assert (a == b).all()
