"""Unit tests for repro.core.matrix and repro.core.consensus."""

import numpy as np
import pytest

from repro.bipartitions import bipartition_masks
from repro.core.consensus import consensus_splits, consensus_tree
from repro.core.matrix import average_from_matrix, normalize_matrix, rf_matrix
from repro.hashing.bfh import BipartitionFrequencyHash
from repro.newick import trees_from_string
from repro.simulation import perturbed_collection, yule_tree
from repro.util.errors import CollectionError

from tests.conftest import make_collection


class TestMatrixEngines:
    def test_three_engines_agree(self):
        trees = make_collection(12, 10, seed=21)
        hash_m = rf_matrix(trees, method="hashrf")
        naive_m = rf_matrix(trees, method="naive")
        day_m = rf_matrix(trees, method="day")
        assert (hash_m == naive_m).all()
        assert (hash_m == day_m).all()

    def test_unknown_method(self, medium_collection):
        with pytest.raises(ValueError):
            rf_matrix(medium_collection, method="quantum")

    def test_empty_collection(self):
        with pytest.raises(CollectionError):
            rf_matrix([], method="naive")

    def test_average_from_matrix(self):
        m = np.array([[0, 2], [2, 0]])
        assert average_from_matrix(m) == [1.0, 1.0]

    def test_average_requires_square(self):
        with pytest.raises(ValueError):
            average_from_matrix(np.zeros((2, 3)))

    def test_normalize_matrix(self):
        m = np.array([[0, 2], [2, 0]])
        out = normalize_matrix(m, 4)  # max RF = 2
        assert out.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_normalize_matrix_degenerate_n(self):
        out = normalize_matrix(np.zeros((2, 2)), 3)
        assert (out == 0).all()


class TestConsensusSplits:
    @pytest.fixture
    def camp_trees(self):
        return trees_from_string(
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));")

    def test_majority(self, camp_trees):
        bfh = BipartitionFrequencyHash.from_trees(camp_trees)
        ns = camp_trees[0].taxon_namespace
        assert consensus_splits(bfh, ns, method="majority") == [0b0011]

    def test_strict_empty_when_conflict(self, camp_trees):
        bfh = BipartitionFrequencyHash.from_trees(camp_trees)
        ns = camp_trees[0].taxon_namespace
        assert consensus_splits(bfh, ns, method="strict") == []

    def test_strict_full_when_identical(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,B),(C,D));")
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert consensus_splits(bfh, trees[0].taxon_namespace,
                                method="strict") == [0b0011]

    def test_greedy_resolves_further(self, camp_trees):
        bfh = BipartitionFrequencyHash.from_trees(camp_trees)
        ns = camp_trees[0].taxon_namespace
        greedy = consensus_splits(bfh, ns, method="greedy")
        assert 0b0011 in greedy  # majority split wins the tie-break

    def test_majority_threshold_below_half_rejected(self, camp_trees):
        bfh = BipartitionFrequencyHash.from_trees(camp_trees)
        with pytest.raises(ValueError):
            consensus_splits(bfh, camp_trees[0].taxon_namespace, threshold=0.3)

    def test_unknown_method(self, camp_trees):
        bfh = BipartitionFrequencyHash.from_trees(camp_trees)
        with pytest.raises(ValueError):
            consensus_splits(bfh, camp_trees[0].taxon_namespace, method="vibes")

    def test_empty_hash(self, quartet_namespace):
        with pytest.raises(CollectionError):
            consensus_splits(BipartitionFrequencyHash(), quartet_namespace)


class TestConsensusTree:
    def test_recovers_base_tree_under_light_noise(self):
        """Majority consensus of lightly perturbed copies == the base tree."""
        base = yule_tree(16, rng=5)
        # 1 NNI per copy: each split survives in most copies.
        trees = [base.copy()] * 0 + perturbed_collection(base, 20, moves=1, rng=6)
        consensus = consensus_tree(trees, base.taxon_namespace)
        base_masks = bipartition_masks(base)
        consensus_masks = bipartition_masks(consensus)
        # Majority consensus must be a subset of ... the base splits
        # dominate: at least 80% recovered, no conflicting extras.
        assert len(consensus_masks & base_masks) >= 0.8 * len(base_masks)

    def test_consensus_splits_frequency_correct(self, medium_collection):
        bfh = BipartitionFrequencyHash.from_trees(medium_collection)
        ns = medium_collection[0].taxon_namespace
        tree = consensus_tree(bfh, ns, method="majority")
        r = len(medium_collection)
        for mask in bipartition_masks(tree):
            assert bfh.frequency(mask) > r / 2

    def test_prebuilt_hash_requires_namespace(self, medium_collection):
        bfh = BipartitionFrequencyHash.from_trees(medium_collection)
        with pytest.raises(ValueError):
            consensus_tree(bfh)

    def test_empty_collection(self):
        with pytest.raises(CollectionError):
            consensus_tree([])

    def test_all_leaves_present(self, medium_collection):
        tree = consensus_tree(medium_collection)
        assert tree.n_leaves == 16

    def test_strict_consensus_star_under_conflict(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        tree = consensus_tree(trees, method="strict")
        assert bipartition_masks(tree) == set()
        assert tree.n_leaves == 4
