"""Unit + property tests for repro.core.mrsrf (MapReduce HashRF)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.hashrf import hashrf_matrix
from repro.core.mrsrf import mrsrf_average_rf, mrsrf_matrix
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import collection_shapes, make_collection


class TestBasics:
    def test_doc_example(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        matrix, stats = mrsrf_matrix(trees, partitions=2)
        assert matrix.tolist() == [[0, 2], [2, 0]]
        assert stats.records_mapped == 2
        assert stats.pairs_emitted == 2  # one internal split per tree

    def test_empty(self):
        with pytest.raises(CollectionError):
            mrsrf_matrix([])

    def test_matrix_properties(self, medium_collection):
        matrix, _ = mrsrf_matrix(medium_collection, partitions=3)
        assert (matrix == matrix.T).all()
        assert (np.diag(matrix) == 0).all()


class TestAgainstHashRF:
    """MrsRF must be bit-identical to the single-node HashRF baseline."""

    @settings(max_examples=15, deadline=None)
    @given(collection_shapes)
    def test_exact_keys_identical(self, shape):
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        reference = hashrf_matrix(trees)
        for partitions in (1, 3):
            matrix, _ = mrsrf_matrix(trees, partitions=partitions)
            assert (matrix == reference).all()

    def test_parallel_workers_identical(self, medium_collection):
        reference = hashrf_matrix(medium_collection)
        matrix, _ = mrsrf_matrix(medium_collection, partitions=4, n_workers=2)
        assert (matrix == reference).all()

    def test_lossy_keys_deterministic(self, medium_collection):
        a, _ = mrsrf_matrix(medium_collection, exact_keys=False, m2=64, rng=3)
        b, _ = mrsrf_matrix(medium_collection, exact_keys=False, m2=64, rng=3)
        assert (a == b).all()

    def test_lossy_underestimates(self):
        trees = make_collection(16, 30, seed=14)
        exact, _ = mrsrf_matrix(trees)
        lossy, _ = mrsrf_matrix(trees, exact_keys=False, m2=2, rng=0)
        assert (lossy <= exact).all()

    def test_average(self, medium_collection):
        matrix, _ = mrsrf_matrix(medium_collection)
        r = matrix.shape[0]
        expected = (matrix.sum(axis=1) / r).tolist()
        assert mrsrf_average_rf(medium_collection) == pytest.approx(expected)


class TestStats:
    def test_pairs_emitted_counts_splits(self, medium_collection):
        _, stats = mrsrf_matrix(medium_collection, partitions=2)
        # Binary trees over n=16 have 13 internal splits each.
        assert stats.pairs_emitted == 13 * len(medium_collection)
        assert stats.records_mapped == len(medium_collection)
        assert stats.distinct_keys >= 13
