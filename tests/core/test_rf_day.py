"""Unit + property tests for repro.core.rf and repro.core.day."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bipartitions import bipartition_masks
from repro.core.day import day_rf
from repro.core.rf import max_rf, rf_from_mask_sets, robinson_foulds
from repro.newick import parse_newick, trees_from_string
from repro.simulation import random_nni
from repro.trees import TaxonNamespace
from repro.util.errors import CollectionError

from tests.conftest import make_random_tree, tree_shapes


class TestMaxRF:
    def test_values(self):
        assert max_rf(4) == 2
        assert max_rf(10) == 14

    def test_min_taxa(self):
        assert max_rf(3) == 0
        with pytest.raises(ValueError):
            max_rf(2)


class TestPaperExample:
    def test_rf_is_two(self, paper_trees):
        assert robinson_foulds(*paper_trees) == 2
        assert day_rf(*paper_trees) == 2

    def test_halved(self, paper_trees):
        assert robinson_foulds(*paper_trees, halved=True) == 1.0

    def test_normalized(self, paper_trees):
        assert robinson_foulds(*paper_trees, normalized=True) == 1.0

    def test_halved_and_normalized_exclusive(self, paper_trees):
        with pytest.raises(ValueError):
            robinson_foulds(*paper_trees, halved=True, normalized=True)

    def test_include_trivial_no_effect_fixed_taxa(self, paper_trees):
        assert robinson_foulds(*paper_trees, include_trivial=True) == 2


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(tree_shapes)
    def test_identity(self, shape):
        n, seed = shape
        t = make_random_tree(n, seed=seed)
        assert robinson_foulds(t, t) == 0
        assert day_rf(t, t) == 0

    @settings(max_examples=40, deadline=None)
    @given(tree_shapes, st.integers(0, 1000))
    def test_symmetry(self, shape, seed2):
        n, seed = shape
        ns = TaxonNamespace()
        t1 = make_random_tree(n, seed=seed, namespace=ns)
        t2 = make_random_tree(n, seed=seed2, namespace=ns)
        assert robinson_foulds(t1, t2) == robinson_foulds(t2, t1)
        assert day_rf(t1, t2) == day_rf(t2, t1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 14), st.integers(0, 500), st.integers(0, 500),
           st.integers(0, 500))
    def test_triangle_inequality(self, n, s1, s2, s3):
        ns = TaxonNamespace()
        a = make_random_tree(n, seed=s1, namespace=ns)
        b = make_random_tree(n, seed=s2, namespace=ns)
        c = make_random_tree(n, seed=s3, namespace=ns)
        assert robinson_foulds(a, c) <= robinson_foulds(a, b) + robinson_foulds(b, c)

    @settings(max_examples=40, deadline=None)
    @given(tree_shapes, st.integers(0, 1000))
    def test_bounds_and_parity(self, shape, seed2):
        n, seed = shape
        ns = TaxonNamespace()
        t1 = make_random_tree(n, seed=seed, namespace=ns)
        t2 = make_random_tree(n, seed=seed2, namespace=ns)
        rf = robinson_foulds(t1, t2)
        assert 0 <= rf <= max_rf(n)
        assert rf % 2 == 0  # binary trees with equal split counts: even RF


class TestDayAgreesWithSets:
    """Day's O(n) algorithm must agree with the set model on every input."""

    @settings(max_examples=60, deadline=None)
    @given(tree_shapes, st.integers(0, 1000))
    def test_random_pairs(self, shape, seed2):
        n, seed = shape
        ns = TaxonNamespace()
        t1 = make_random_tree(n, seed=seed, namespace=ns)
        t2 = make_random_tree(n, seed=seed2, namespace=ns)
        assert day_rf(t1, t2) == robinson_foulds(t1, t2)

    @settings(max_examples=30, deadline=None)
    @given(tree_shapes, st.integers(1, 6))
    def test_nni_neighbours(self, shape, moves):
        """NNI chains give controlled near-identical pairs (RF <= 2*moves)."""
        n, seed = shape
        t1 = make_random_tree(n, seed=seed)
        t2 = t1.copy()
        for i in range(moves):
            random_nni(t2, rng=seed + i)
        rf_sets = robinson_foulds(t1, t2)
        assert day_rf(t1, t2) == rf_sets
        assert rf_sets <= 2 * moves

    def test_small_trees(self):
        ns = TaxonNamespace()
        t1 = parse_newick("(A,B,C);", ns)
        t2 = parse_newick("(C,B,A);", ns)
        assert day_rf(t1, t2) == 0

    def test_rooted_vs_unrooted_input_shapes(self):
        ns = TaxonNamespace()
        rooted = parse_newick("(((A,B),C),(D,E));", ns)
        unrooted = parse_newick("((A,B),C,(D,E));", ns)
        assert day_rf(rooted, unrooted) == 0

    def test_requires_shared_namespace(self):
        t1 = parse_newick("((A,B),(C,D));")
        t2 = parse_newick("((A,B),(C,D));")
        with pytest.raises(CollectionError):
            day_rf(t1, t2)
        with pytest.raises(CollectionError):
            robinson_foulds(t1, t2)

    def test_requires_same_leaf_set(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        t1 = parse_newick("((A,B),(C,D));", ns)
        t2 = parse_newick("((A,B),(C,E));", ns)
        with pytest.raises(CollectionError):
            day_rf(t1, t2)


class TestRfFromMaskSets:
    def test_direct(self, paper_trees):
        a = bipartition_masks(paper_trees[0])
        b = bipartition_masks(paper_trees[1])
        assert rf_from_mask_sets(a, b) == 2
