"""Unit tests for repro.core.sequential (DS) and repro.core.parallel (DSMP)."""

import pytest

from repro.bipartitions import bipartition_masks
from repro.core.parallel import dsmp_average_rf, resolve_workers, trees_as_newick
from repro.core.sequential import (
    average_rf_against_sets,
    reference_mask_sets,
    sequential_average_rf,
)
from repro.core.variants import size_filter_transform
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import make_collection


class TestReferenceMaskSets:
    def test_one_set_per_tree(self, medium_collection):
        sets = reference_mask_sets(medium_collection)
        assert len(sets) == len(medium_collection)
        for tree, masks in zip(medium_collection, sets):
            assert masks == frozenset(bipartition_masks(tree))

    def test_empty_raises(self):
        with pytest.raises(CollectionError):
            reference_mask_sets([])

    def test_transform_applied(self, medium_collection):
        transform = size_filter_transform(min_size=3)
        sets = reference_mask_sets(medium_collection, transform=transform)
        full = medium_collection[0].leaf_mask()
        from repro.bipartitions import side_sizes

        for masks in sets:
            assert all(min(side_sizes(m, full)) >= 3 for m in masks)


class TestSequential:
    def test_streaming_query(self, medium_collection):
        """Query may be a lazy iterator (the paper's dynamic loading)."""
        lazy = iter(medium_collection)
        values = sequential_average_rf(lazy, medium_collection)
        assert len(values) == len(medium_collection)

    def test_empty_reference(self, medium_collection):
        with pytest.raises(CollectionError):
            sequential_average_rf(medium_collection, [])

    def test_empty_query_ok(self, medium_collection):
        assert sequential_average_rf([], medium_collection) == []

    def test_average_against_sets_validates(self):
        with pytest.raises(CollectionError):
            average_rf_against_sets(set(), [])


class TestDSMP:
    def test_matches_sequential(self, medium_collection):
        expected = sequential_average_rf(medium_collection, medium_collection)
        for workers in (1, 2, 3):
            got = dsmp_average_rf(medium_collection, medium_collection,
                                  n_workers=workers)
            assert got == pytest.approx(expected)

    def test_chunk_size_override(self, medium_collection):
        expected = sequential_average_rf(medium_collection, medium_collection)
        got = dsmp_average_rf(medium_collection, medium_collection,
                              n_workers=2, chunk_size=1)
        assert got == pytest.approx(expected)

    def test_disparate_collections(self):
        trees = make_collection(10, 12, seed=55)
        query, reference = trees[:4], trees[4:]
        expected = sequential_average_rf(query, reference)
        got = dsmp_average_rf(query, reference, n_workers=2)
        assert got == pytest.approx(expected)

    def test_transform_crosses_process_boundary(self, medium_collection):
        transform = size_filter_transform(min_size=3)
        expected = sequential_average_rf(medium_collection, medium_collection,
                                         transform=transform)
        got = dsmp_average_rf(medium_collection, medium_collection,
                              n_workers=2, transform=transform)
        assert got == pytest.approx(expected)

    def test_empty_reference_raises(self, medium_collection):
        with pytest.raises(CollectionError):
            dsmp_average_rf(medium_collection, [], n_workers=2)

    def test_order_preserved(self):
        trees = trees_from_string(
            "((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n((A,B),(C,D));")
        values = dsmp_average_rf(trees, trees[:1], n_workers=2, chunk_size=1)
        assert values == [0.0, 2.0, 2.0, 0.0]


class TestHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_trees_as_newick_strips_lengths(self, medium_collection):
        texts = trees_as_newick(medium_collection[:2])
        assert all(";" in t and ":" not in t for t in texts)
