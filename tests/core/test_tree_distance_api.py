"""Tests for the generalized tree_distance API."""

import pytest

from repro.core.api import TREE_METRICS, tree_distance
from repro.newick import trees_from_string

from tests.conftest import make_random_tree
from repro.trees import TaxonNamespace


@pytest.fixture
def quartet_pair():
    return trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")


class TestTreeDistance:
    def test_all_metrics_run(self, quartet_pair):
        t1, t2 = quartet_pair
        values = {metric: tree_distance(t1, t2, metric=metric)
                  for metric in TREE_METRICS}
        assert values["rf"] == 2
        assert values["matching"] == 2
        assert values["quartet"] == 1
        assert values["triplet"] >= 1
        assert values["branch-score"] >= 0

    def test_identity_for_all_metrics(self):
        t = make_random_tree(10, seed=13)
        for metric in TREE_METRICS:
            assert tree_distance(t, t, metric=metric) == 0

    def test_symmetry_for_all_metrics(self):
        ns = TaxonNamespace()
        t1 = make_random_tree(9, seed=14, namespace=ns)
        t2 = make_random_tree(9, seed=15, namespace=ns)
        for metric in TREE_METRICS:
            assert tree_distance(t1, t2, metric=metric) == pytest.approx(
                tree_distance(t2, t1, metric=metric))

    def test_branch_score_uses_lengths(self):
        trees = trees_from_string(
            "((A:1,B:1):2,(C:1,D:1):0);\n((A:1,B:1):1,(C:1,D:1):0);")
        assert tree_distance(*trees, metric="branch-score") == pytest.approx(1.0)
        assert tree_distance(*trees, metric="rf") == 0

    def test_unknown_metric(self, quartet_pair):
        with pytest.raises(ValueError):
            tree_distance(*quartet_pair, metric="vibes")
