"""Unit tests for repro.core.variants (the extensibility layer)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bipartitions import bipartition_masks, side_sizes
from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.core.sequential import sequential_average_rf
from repro.core.variants import (
    average_valued_rf,
    compose_transforms,
    halve_average,
    information_weighted_average_rf,
    normalize_average,
    restrict_taxa_transform,
    size_filter_transform,
    split_information_content,
)
from repro.newick import parse_newick, trees_from_string
from repro.trees import TaxonNamespace
from repro.trees.manipulate import prune_to_taxa

from tests.conftest import make_collection, make_random_tree


class TestSizeFilter:
    def test_filters_small_splits(self):
        t = size_filter_transform(min_size=3)
        full = 0b11111111
        assert t({0b0011, 0b0111}, full) == {0b0111}

    def test_max_size(self):
        t = size_filter_transform(min_size=1, max_size=2)
        full = 0b11111111
        assert t({0b0011, 0b0111}, full) == {0b0011}

    def test_validation(self):
        with pytest.raises(ValueError):
            size_filter_transform(min_size=0)
        with pytest.raises(ValueError):
            size_filter_transform(min_size=3, max_size=2)

    def test_filtered_rf_bounded_by_plain(self, medium_collection):
        """Filtering can only remove mismatches: filtered avg <= plain avg."""
        plain = bfhrf_average_rf(medium_collection)
        filtered = bfhrf_average_rf(medium_collection,
                                    transform=size_filter_transform(min_size=4))
        assert all(f <= p + 1e-9 for f, p in zip(filtered, plain))

    def test_picklable(self):
        import pickle

        t = size_filter_transform(min_size=2, max_size=5)
        again = pickle.loads(pickle.dumps(t))
        assert again({0b0011}, 0b1111) == {0b0011}


class TestRestrictTaxa:
    def test_variable_taxa_rf_matches_pruned_trees(self):
        """Hash-transform restriction == physically pruning every tree."""
        trees = make_collection(12, 10, seed=31)
        ns = trees[0].taxon_namespace
        keep_labels = [ns[i].label for i in (0, 1, 3, 4, 6, 8, 10)]
        transform = restrict_taxa_transform(keep_labels, ns)

        via_transform = bfhrf_average_rf(trees, transform=transform)

        pruned = [prune_to_taxa(t.copy(), keep_labels) for t in trees]
        via_pruning = sequential_average_rf(pruned, pruned)
        assert via_transform == pytest.approx(via_pruning)

    def test_mask_input(self):
        trees = make_collection(8, 5, seed=32)
        transform = restrict_taxa_transform(0b00111111)
        values = bfhrf_average_rf(trees, transform=transform)
        assert len(values) == 5

    def test_mixed_leaf_sets_become_comparable(self):
        """The supertree setting: trees over different taxa, compared on
        the intersection — impossible for HashRF/DS (§VII-E)."""
        ns = TaxonNamespace(["A", "B", "C", "D", "E", "F"])
        t1 = parse_newick("(((A,B),(C,D)),E);", ns)      # lacks F
        t2 = parse_newick("(((A,B),(C,D)),F);", ns)      # lacks E
        common = ns.mask_of(["A", "B", "C", "D"])
        transform = restrict_taxa_transform(common)
        bfh = build_bfh([t2], transform=transform)
        # Restricted to {A,B,C,D}, both trees display AB|CD: distance 0.
        assert bfh.average_rf(transform(bipartition_masks(t1), t1.leaf_mask())) == 0.0

    def test_labels_need_namespace(self):
        with pytest.raises(ValueError):
            restrict_taxa_transform(["A", "B"])

    def test_empty_keep_rejected(self):
        with pytest.raises(ValueError):
            restrict_taxa_transform(0)


class TestCompose:
    def test_order_left_to_right(self):
        full = 0b11111111
        t = compose_transforms(size_filter_transform(min_size=2),
                               size_filter_transform(min_size=3))
        assert t({0b0011, 0b0111}, full) == {0b0111}

    def test_picklable(self):
        import pickle

        t = compose_transforms(size_filter_transform(min_size=2))
        pickle.loads(pickle.dumps(t))


class TestValuedRF:
    def test_unit_value_is_plain_rf(self, medium_collection):
        bfh = build_bfh(medium_collection)
        for tree in medium_collection[:5]:
            masks = bipartition_masks(tree)
            assert average_valued_rf(bfh, masks, lambda m: 1.0) == pytest.approx(
                bfh.average_rf(masks))

    def test_zero_value_zero_distance(self, medium_collection):
        bfh = build_bfh(medium_collection)
        masks = bipartition_masks(medium_collection[0])
        assert average_valued_rf(bfh, masks, lambda m: 0.0) == 0.0

    def test_matches_naive_weighted_symmetric_difference(self):
        trees = make_collection(10, 6, seed=41)
        bfh = build_bfh(trees)
        full = trees[0].leaf_mask()

        def value(mask):
            return float(min(side_sizes(mask, full)))

        for query in trees[:3]:
            q_masks = bipartition_masks(query)
            expected = 0.0
            for t in trees:
                t_masks = bipartition_masks(t)
                expected += sum(value(m) for m in q_masks ^ t_masks)
            expected /= len(trees)
            assert average_valued_rf(bfh, q_masks, value) == pytest.approx(expected)


class TestInformationContent:
    def test_quartet_value(self):
        # P(AB|CD on 4 taxa) = 1/3 -> log2(3) bits.
        assert split_information_content(0b0011, 0b1111) == pytest.approx(
            math.log2(3))

    def test_trivial_zero(self):
        assert split_information_content(0b0001, 0b1111) == 0.0

    def test_balanced_splits_carry_more_information(self):
        full = (1 << 12) - 1
        cherry = (1 << 2) - 1          # 2 vs 10
        balanced = (1 << 6) - 1        # 6 vs 6
        assert split_information_content(balanced, full) > \
            split_information_content(cherry, full)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(4, 20), st.integers(2, 18))
    def test_non_negative_and_symmetric(self, n, a):
        if a >= n - 1:
            a = n - 2
        full = (1 << n) - 1
        mask = (1 << a) - 1
        ic = split_information_content(mask, full)
        ic_complement = split_information_content(mask ^ full, full)
        assert ic >= 0.0
        assert ic == pytest.approx(ic_complement)

    def test_probability_interpretation_exhaustive_quartet(self):
        # Sum of 2^-IC over the 3 quartet splits must be 1.
        total = sum(2 ** -split_information_content(m, 0b1111)
                    for m in (0b0011, 0b0101, 0b0110))
        assert total == pytest.approx(1.0)

    def test_information_weighted_average(self, medium_collection):
        bfh = build_bfh(medium_collection)
        full = medium_collection[0].leaf_mask()
        masks = bipartition_masks(medium_collection[0])
        value = information_weighted_average_rf(bfh, masks, full)
        assert value >= 0.0
        # Weighted by ≤ max IC, so bounded by plain RF times max weight.
        max_ic = max(split_information_content(m, full) for m in masks)
        assert value <= bfh.average_rf(masks) * max_ic + 1e-9


class TestPostprocessing:
    def test_normalize(self):
        assert normalize_average([2.0, 4.0], 5) == [0.5, 1.0]

    def test_normalize_degenerate(self):
        assert normalize_average([0.0], 3) == [0.0]

    def test_halve(self):
        assert halve_average([2.0, 3.0]) == [1.0, 1.5]
