"""Unit + property tests for repro.core.vectorized (GPU-style batch backend)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.core.variants import size_filter_transform
from repro.core.vectorized import VectorizedBFH, _masks_to_words, vectorized_average_rf
from repro.newick import parse_newick, trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import collection_shapes, make_collection


class TestWordPacking:
    def test_single_word(self):
        words = _masks_to_words([0b1011, 0], 1)
        assert words.tolist() == [[0b1011], [0]]

    def test_multi_word_big_endian(self):
        mask = (1 << 100) | 1
        words = _masks_to_words([mask], 2)
        assert words[0, 0] == 1 << 36   # high word
        assert words[0, 1] == 1         # low word

    def test_packing_injective(self):
        masks = [5, 1 << 70, (1 << 70) | 3, 2, 256, 1]
        words = _masks_to_words(masks, 2)
        void = words.view(np.dtype((np.void, 16))).ravel()
        assert len(set(void.tolist())) == len(masks)

    def test_probe_finds_every_stored_key(self, medium_collection):
        from repro.core.bfhrf import build_bfh

        bfh = build_bfh(medium_collection)
        vbfh = VectorizedBFH.from_bfh(bfh, 16)
        masks = sorted(bfh.counts)
        words = _masks_to_words(masks, vbfh.n_words)
        freqs = vbfh.lookup_frequencies(words)
        assert freqs.tolist() == [bfh.counts[m] for m in masks]


class TestEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(collection_shapes)
    def test_matches_dict_backend(self, shape):
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        expected = bfhrf_average_rf(trees)
        got = vectorized_average_rf(trees)
        assert got == pytest.approx(expected)

    def test_large_n_multiword(self):
        trees = make_collection(130, 8, seed=9)  # 3 words of 64 bits
        assert vectorized_average_rf(trees) == pytest.approx(
            bfhrf_average_rf(trees))

    def test_disparate_collections(self):
        trees = make_collection(12, 14, seed=10)
        q, r = trees[:5], trees[5:]
        assert vectorized_average_rf(q, r) == pytest.approx(
            bfhrf_average_rf(q, r))

    def test_transform_supported(self, medium_collection):
        transform = size_filter_transform(min_size=3)
        assert vectorized_average_rf(medium_collection, transform=transform) == \
            pytest.approx(bfhrf_average_rf(medium_collection, transform=transform))

    def test_from_bfh_conversion(self, medium_collection):
        bfh = build_bfh(medium_collection)
        vbfh = VectorizedBFH.from_bfh(bfh, 16)
        assert len(vbfh) == len(bfh)
        got = vbfh.average_rf_batch(medium_collection)
        assert got.tolist() == pytest.approx(bfhrf_average_rf(medium_collection))


class TestProbeEdgeCases:
    def test_unseen_splits_score_zero_frequency(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,B),(C,D));")
        vbfh = VectorizedBFH.from_trees(trees)
        ns = trees[0].taxon_namespace
        novel = trees_from_string("((A,D),(B,C));", ns)
        assert vbfh.average_rf_batch(novel).tolist() == [2.0]

    def test_query_mask_wider_than_reference_keys(self):
        """A query split using a high taxon bit absent from every
        reference key must not alias into a false hit."""
        ns_text = "((A,B),(C,D),E);"   # E gets bit 4 but no internal split uses it
        base = trees_from_string(ns_text)
        ns = base[0].taxon_namespace
        reference = trees_from_string("((A,B),(C,D),E);\n((A,B),(C,D),E);", ns)
        vbfh = VectorizedBFH.from_trees(reference)
        query = trees_from_string("((A,B),(C,E),D);", ns)
        expected = bfhrf_average_rf(query, reference)
        assert vbfh.average_rf_batch(query).tolist() == pytest.approx(expected)

    def test_empty_batch(self, medium_collection):
        vbfh = VectorizedBFH.from_trees(medium_collection)
        assert vbfh.average_rf_batch([]).shape == (0,)

    def test_star_query_tree(self, quartet_namespace):
        """A star tree has no internal splits: avgRF = mean split count."""
        reference = trees_from_string("((A,B),(C,D));\n((A,B),(C,D));")
        vbfh = VectorizedBFH.from_trees(reference)
        star = parse_newick("(A,B,C,D);", reference[0].taxon_namespace)
        # Left term: every reference split unmatched (1 per tree);
        # right term: zero query splits. avg = 2/2 = 1.
        assert vbfh.average_rf_batch([star]).tolist() == [1.0]

    def test_mixed_batch_with_star(self):
        reference = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        ns = reference[0].taxon_namespace
        batch = [parse_newick("(A,B,C,D);", ns),
                 parse_newick("((A,B),(C,D));", ns),
                 parse_newick("(A,B,C,D);", ns)]
        got = VectorizedBFH.from_trees(reference).average_rf_batch(batch)
        expected = [1.0, 1.0, 1.0]
        assert got.tolist() == pytest.approx(expected)

    def test_empty_reference(self):
        with pytest.raises(CollectionError):
            VectorizedBFH.from_trees([])

    def test_splitless_reference(self):
        """Regression (selfcheck-found): a reference of star trees stores
        zero keys, and the probe's index clamp hit -1 on the empty array."""
        reference = trees_from_string("(A,B,C,D);")
        ns = reference[0].taxon_namespace
        query = trees_from_string("((A,B),(C,D));\n(A,B,C,D);", ns)
        got = VectorizedBFH.from_trees(reference).average_rf_batch(query)
        assert got.tolist() == bfhrf_average_rf(query, reference)
        assert got.tolist() == [1.0, 0.0]

    def test_star_last_in_batch(self):
        """Regression (selfcheck-found): a splitless tree as the *last*
        batch entry used to corrupt the previous tree's average — the
        clamped ``reduceat`` index stole that segment's final term."""
        trees = trees_from_string(
            "((A,B),(C,D),(E,F));\n((A,C),(B,D),(E,F));\n(A,B,C,D,E,F);")
        got = VectorizedBFH.from_trees(trees).average_rf_batch(trees)
        assert got.tolist() == bfhrf_average_rf(trees)
        assert got.tolist() == [7 / 3, 7 / 3, 2.0]
