"""Unit tests for repro.hashing.bfh — the core data structure."""

import pytest
from hypothesis import given, settings

from repro.bipartitions import bipartition_masks
from repro.hashing.bfh import BipartitionFrequencyHash
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import collection_shapes, make_collection


class TestConstruction:
    def test_from_trees_counts(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees)
        assert bfh.n_trees == 2
        # Each tree has one internal split; they differ.
        assert bfh.total == 2
        assert len(bfh) == 2
        assert bfh.frequency(0b0011) == 1
        assert bfh.frequency(0b0101) == 1

    def test_shared_split_accumulates(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,B),(C,D));")
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.frequency(0b0011) == 2
        assert len(bfh) == 1

    def test_empty_collection_raises(self):
        with pytest.raises(CollectionError):
            BipartitionFrequencyHash.from_trees([])

    def test_streaming_add(self, small_collection):
        bfh = BipartitionFrequencyHash()
        for tree in small_collection:
            bfh.add_tree(tree)
        reference = BipartitionFrequencyHash.from_trees(small_collection)
        assert bfh.counts == reference.counts
        assert bfh.total == reference.total

    def test_include_trivial(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees, include_trivial=True)
        # 4 shared pendant splits at frequency 2, plus 2 distinct internal.
        assert bfh.total == 10
        assert bfh.frequency(0b0001) == 2

    def test_unknown_mask_zero(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees)
        assert bfh.frequency(0b0110) == 0
        assert 0b0110 not in bfh
        assert 0b0011 in bfh

    def test_transform_applied(self, small_collection):
        def drop_all(masks, leaf_mask):
            return set()

        bfh = BipartitionFrequencyHash.from_trees(small_collection, transform=drop_all)
        assert bfh.total == 0
        assert bfh.n_trees == len(small_collection)


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(collection_shapes)
    def test_total_is_sum_of_counts(self, shape):
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.total == sum(freq for _, freq in bfh.items())
        assert bfh.n_trees == r

    @settings(max_examples=30, deadline=None)
    @given(collection_shapes)
    def test_frequencies_bounded_by_r(self, shape):
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert all(1 <= freq <= r for _, freq in bfh.items())

    @settings(max_examples=30, deadline=None)
    @given(collection_shapes)
    def test_total_equals_r_times_splits_per_tree(self, shape):
        """Binary trees over fixed n each contribute exactly n-3 splits."""
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.total == r * (n - 3)


class TestMerge:
    def test_merge_equals_whole(self, medium_collection):
        half = len(medium_collection) // 2
        a = BipartitionFrequencyHash.from_trees(medium_collection[:half])
        b = BipartitionFrequencyHash.from_trees(medium_collection[half:])
        a.merge(b)
        whole = BipartitionFrequencyHash.from_trees(medium_collection)
        assert a.counts == whole.counts
        assert a.total == whole.total
        assert a.n_trees == whole.n_trees

    def test_merge_policy_mismatch(self, paper_trees):
        a = BipartitionFrequencyHash.from_trees(paper_trees)
        b = BipartitionFrequencyHash.from_trees(paper_trees, include_trivial=True)
        with pytest.raises(ValueError):
            a.merge(b)


class TestAverageRF:
    def test_terms_match_paper_algebra(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees)
        masks = bipartition_masks(paper_trees[0])
        left, right = bfh.average_rf_terms(masks)
        # RF_left: sum(BFH)=2 minus freq(query split)=1 -> 1
        # RF_right: r - freq = 2 - 1 -> 1
        assert (left, right) == (1, 1)
        assert bfh.average_rf(masks) == 1.0

    def test_identical_collection_zero(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,B),(C,D));")
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.average_rf_of_tree(trees[0]) == 0.0

    def test_disjoint_query_max(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees)
        # Query split absent from both reference trees.
        assert bfh.average_rf({0b0110}) == 2.0

    def test_empty_hash_raises(self):
        with pytest.raises(CollectionError):
            BipartitionFrequencyHash().average_rf({1})


class TestSupportAndFiltering:
    def test_support(self):
        trees = trees_from_string(
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));")
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.support(0b0011) == pytest.approx(2 / 3)

    def test_support_empty_hash(self):
        with pytest.raises(CollectionError):
            BipartitionFrequencyHash().support(1)

    def test_masks_with_support(self):
        trees = trees_from_string(
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));")
        bfh = BipartitionFrequencyHash.from_trees(trees)
        assert bfh.masks_with_support_at_least(0.6) == [0b0011]
        assert set(bfh.masks_with_support_at_least(0.0)) == {0b0011, 0b0101}

    def test_masks_with_support_validates(self, paper_trees):
        bfh = BipartitionFrequencyHash.from_trees(paper_trees)
        with pytest.raises(ValueError):
            bfh.masks_with_support_at_least(1.5)

    def test_filtered_keeps_r(self, medium_collection):
        bfh = BipartitionFrequencyHash.from_trees(medium_collection)
        frequent = bfh.filtered(lambda mask, freq: freq >= 5)
        assert frequent.n_trees == bfh.n_trees
        assert all(freq >= 5 for _, freq in frequent.items())
        assert frequent.total == sum(f for _, f in frequent.items())
