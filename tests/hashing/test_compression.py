"""Unit + property tests for repro.hashing.compression (§IX future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.bfh import BipartitionFrequencyHash
from repro.hashing.compression import (
    CompressedBipartitionFrequencyHash,
    compress_mask,
    compressed_size,
    decompress_mask,
)
from repro.util.errors import BipartitionError, CollectionError

from tests.conftest import make_collection


class TestCodec:
    @pytest.mark.parametrize("mask", [0, 1, 0b1011, (1 << 64) - 1, 1 << 200,
                                      0b101 << 300, (1 << 1000) | 1])
    def test_roundtrip_known(self, mask):
        assert decompress_mask(compress_mask(mask)) == mask

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 2048) - 1))
    def test_roundtrip_property(self, mask):
        assert decompress_mask(compress_mask(mask)) == mask

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, (1 << 512) - 1), st.integers(0, (1 << 512) - 1))
    def test_injective(self, a, b):
        if a != b:
            assert compress_mask(a) != compress_mask(b)

    def test_sparse_masks_compress_well(self):
        sparse = (1 << 900) | (1 << 10)
        assert compressed_size(sparse) < 10  # raw form would be 113+ bytes

    def test_dense_masks_fall_back_to_raw(self):
        dense = (1 << 256) - 1
        # Raw: 1 + 32 bytes; gaps would be 1 + 256 bytes.
        assert compressed_size(dense) == 33

    def test_never_larger_than_raw_plus_header(self):
        for mask in (0, 1, 0b1010101, (1 << 100) - 1, 1 << 99):
            raw_len = 1 + max(1, (mask.bit_length() + 7) // 8)
            assert compressed_size(mask) <= raw_len

    def test_rejects_negative(self):
        with pytest.raises(BipartitionError):
            compress_mask(-1)

    def test_rejects_garbage(self):
        with pytest.raises(BipartitionError):
            decompress_mask(b"")
        with pytest.raises(BipartitionError):
            decompress_mask(b"\x7fanything")
        with pytest.raises(BipartitionError):
            decompress_mask(b"\x01\x80")  # truncated varint


class TestCompressedBFH:
    def test_equivalent_to_plain(self, medium_collection):
        plain = BipartitionFrequencyHash.from_trees(medium_collection)
        compressed = CompressedBipartitionFrequencyHash.from_trees(medium_collection)
        assert compressed.n_trees == plain.n_trees
        assert compressed.total == plain.total
        assert len(compressed) == len(plain)
        for mask, freq in plain.items():
            assert compressed.frequency(mask) == freq

    def test_average_rf_identical(self, medium_collection):
        plain = BipartitionFrequencyHash.from_trees(medium_collection)
        compressed = CompressedBipartitionFrequencyHash.from_trees(medium_collection)
        for tree in medium_collection[:8]:
            assert compressed.average_rf_of_tree(tree) == \
                plain.average_rf_of_tree(tree)

    def test_decompress_recovers_plain(self, medium_collection):
        plain = BipartitionFrequencyHash.from_trees(medium_collection)
        compressed = CompressedBipartitionFrequencyHash.from_trees(medium_collection)
        recovered = compressed.decompress()
        assert recovered.counts == plain.counts
        assert recovered.total == plain.total
        assert recovered.n_trees == plain.n_trees

    def test_key_bytes_below_raw(self):
        # Large n: per-key compression should beat fixed-width raw bytes.
        trees = make_collection(200, 10, seed=5)
        compressed = CompressedBipartitionFrequencyHash.from_trees(trees)
        raw_bytes = len(compressed) * ((200 + 7) // 8)
        assert compressed.key_bytes() < raw_bytes * 1.5

    def test_empty_raises(self):
        with pytest.raises(CollectionError):
            CompressedBipartitionFrequencyHash.from_trees([])
        with pytest.raises(CollectionError):
            CompressedBipartitionFrequencyHash().average_rf([1])
