"""Unit tests for repro.hashing.multihash (HashRF-style hashing)."""

import pytest

from repro.bipartitions import bipartition_masks
from repro.hashing.multihash import UniversalSplitHasher, collision_rate

from tests.conftest import make_collection


class TestHasher:
    def test_deterministic_for_seed(self):
        a = UniversalSplitHasher(16, m1=101, m2=257, rng=5)
        b = UniversalSplitHasher(16, m1=101, m2=257, rng=5)
        assert [a.key(m) for m in (1, 5, 0b1010)] == [b.key(m) for m in (1, 5, 0b1010)]

    def test_h1_is_linear_sum(self):
        h = UniversalSplitHasher(8, m1=97, m2=1 << 16, rng=42)
        mask = 0b10110
        expected = (h.coeffs1[1] + h.coeffs1[2] + h.coeffs1[4]) % 97
        assert h.h1(mask) == expected

    def test_h2_independent_of_h1(self):
        h = UniversalSplitHasher(8, m1=97, m2=89, rng=1)
        assert h.key(0b0110) == (h.h1(0b0110), h.h2(0b0110))

    def test_ranges(self):
        h = UniversalSplitHasher(32, m1=13, m2=7, rng=2)
        for mask in range(1, 200):
            h1, h2 = h.key(mask)
            assert 0 <= h1 < 13
            assert 0 <= h2 < 7

    def test_empty_mask(self):
        h = UniversalSplitHasher(8, m1=13, m2=7, rng=3)
        assert h.key(0) == (0, 0)

    @pytest.mark.parametrize("kwargs", [
        dict(n_taxa=0, m1=5, m2=5),
        dict(n_taxa=4, m1=1, m2=5),
        dict(n_taxa=4, m1=5, m2=1),
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            UniversalSplitHasher(**kwargs)


class TestCollisionRate:
    def test_zero_for_empty(self):
        h = UniversalSplitHasher(8, m1=101, m2=101, rng=0)
        assert collision_rate([], h) == 0.0

    def test_wide_keys_rarely_collide(self):
        trees = make_collection(16, 20, seed=77)
        masks = set()
        for t in trees:
            masks |= bipartition_masks(t)
        h = UniversalSplitHasher(16, m1=1 << 20, m2=1 << 30, rng=0)
        assert collision_rate(masks, h) == 0.0

    def test_narrow_keys_collide(self):
        trees = make_collection(16, 30, seed=78)
        masks = set()
        for t in trees:
            masks |= bipartition_masks(t)
        # Tiny key space: collisions guaranteed by pigeonhole.
        h = UniversalSplitHasher(16, m1=3, m2=2, rng=0)
        assert collision_rate(masks, h) > 0.5

    def test_rate_monotone_in_key_width(self):
        trees = make_collection(12, 40, seed=79)
        masks = set()
        for t in trees:
            masks |= bipartition_masks(t)
        narrow = collision_rate(masks, UniversalSplitHasher(12, m1=7, m2=3, rng=1))
        wide = collision_rate(masks, UniversalSplitHasher(12, m1=1 << 16, m2=1 << 16, rng=1))
        assert narrow >= wide
