"""Unit tests for repro.hashing.weighted (branch-score through the hash)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bipartitions import bipartitions_with_lengths
from repro.hashing.weighted import WeightedBipartitionHash
from repro.newick import trees_from_string
from repro.util.errors import CollectionError

from tests.conftest import make_collection


def naive_branch_score(tree_a, tree_b) -> float:
    """Reference implementation: direct two-tree branch-score distance."""
    wa = bipartitions_with_lengths(tree_a)
    wb = bipartitions_with_lengths(tree_b)
    total = 0.0
    for mask in set(wa) | set(wb):
        total += abs(wa.get(mask, 0.0) - wb.get(mask, 0.0))
    return total


class TestBasics:
    def test_doc_example(self):
        trees = trees_from_string(
            "((A:1,B:1):2,(C:1,D:1):0);\n((A:1,B:1):1,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        assert wh.average_branch_score(trees[0]) == pytest.approx(0.5)

    def test_frequency_and_weight_sum(self):
        trees = trees_from_string(
            "((A:1,B:1):2,(C:1,D:1):0);\n((A:1,B:1):1,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        assert wh.frequency(0b0011) == 2
        assert wh.weight_sum(0b0011) == pytest.approx(3.0)
        assert wh.mean_weight(0b0011) == pytest.approx(1.5)

    def test_mean_weight_missing_split(self):
        trees = trees_from_string("((A:1,B:1):2,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        with pytest.raises(KeyError):
            wh.mean_weight(0b0101)

    def test_empty_raises(self):
        with pytest.raises(CollectionError):
            WeightedBipartitionHash.from_trees([])

    def test_add_after_finalize_rejected(self):
        trees = trees_from_string("((A:1,B:1):2,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        with pytest.raises(RuntimeError):
            wh.add_tree(trees[0])

    def test_contains_len(self):
        trees = trees_from_string("((A:1,B:1):2,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        assert 0b0011 in wh
        assert len(wh) == 1


class TestAbsDeviation:
    def test_against_numpy(self):
        trees = trees_from_string(
            "((A:1,B:1):2,(C:1,D:1):0);\n"
            "((A:1,B:1):5,(C:1,D:1):0);\n"
            "((A:1,B:1):3,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        weights = np.array([2.0, 5.0, 3.0])
        for probe in (0.0, 2.0, 3.3, 10.0):
            assert wh.abs_deviation_sum(0b0011, probe) == pytest.approx(
                np.abs(weights - probe).sum())

    def test_absent_mask_zero(self):
        trees = trees_from_string("((A:1,B:1):2,(C:1,D:1):0);")
        wh = WeightedBipartitionHash.from_trees(trees)
        assert wh.abs_deviation_sum(0b0101, 5.0) == 0.0


class TestAgainstNaive:
    """The hash-based average must equal the mean of pairwise branch scores."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 12), st.integers(2, 8), st.integers(0, 500))
    def test_average_equals_naive_mean(self, n, r, seed):
        trees = make_collection(n, r, seed=seed)
        wh = WeightedBipartitionHash.from_trees(trees)
        for query in trees[: min(3, r)]:
            expected = sum(naive_branch_score(query, t) for t in trees) / r
            assert wh.average_branch_score(query) == pytest.approx(expected, rel=1e-9)

    def test_self_collection_zero_for_single(self):
        trees = make_collection(8, 1, seed=3)
        wh = WeightedBipartitionHash.from_trees(trees)
        assert wh.average_branch_score(trees[0]) == pytest.approx(0.0)
