"""Unit tests for the MapReduce engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import JobStats, MapReduceJob, run_job


def wc_map(line):
    for word in line.split():
        yield word, 1


def wc_reduce(word, counts):
    yield word, sum(counts)


def identity_map(record):
    yield record % 7, record


def collect_reduce(key, values):
    yield key, sorted(values)


class TestWordCount:
    LINES = ["the quick brown fox", "the lazy dog", "the fox"]

    def test_counts(self):
        outputs, stats = run_job(MapReduceJob(wc_map, wc_reduce), self.LINES)
        assert dict(outputs) == {"the": 3, "quick": 1, "brown": 1,
                                 "fox": 2, "lazy": 1, "dog": 1}
        assert stats.records_mapped == 3
        assert stats.pairs_emitted == 9
        assert stats.distinct_keys == 6

    @pytest.mark.parametrize("partitions", [1, 2, 5, 16])
    def test_partition_count_irrelevant_to_result(self, partitions):
        outputs, stats = run_job(
            MapReduceJob(wc_map, wc_reduce, partitions=partitions), self.LINES)
        assert dict(outputs) == {"the": 3, "quick": 1, "brown": 1,
                                 "fox": 2, "lazy": 1, "dog": 1}
        assert stats.partitions == partitions

    def test_parallel_matches_serial(self):
        serial, _ = run_job(MapReduceJob(wc_map, wc_reduce, partitions=3),
                            self.LINES)
        parallel, _ = run_job(MapReduceJob(wc_map, wc_reduce, partitions=3),
                              self.LINES, n_workers=2)
        assert sorted(serial) == sorted(parallel)


class TestEdgeCases:
    def test_empty_input(self):
        outputs, stats = run_job(MapReduceJob(wc_map, wc_reduce), [])
        assert outputs == []
        assert stats.records_mapped == 0

    def test_map_emitting_nothing(self):
        outputs, _ = run_job(MapReduceJob(lambda r: [], wc_reduce), [1, 2, 3])
        assert outputs == []

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            MapReduceJob(wc_map, wc_reduce, partitions=0)

    def test_reduce_multi_output(self):
        def explode(key, values):
            for v in values:
                yield key, v

        outputs, _ = run_job(MapReduceJob(identity_map, explode), list(range(10)))
        assert sorted(v for _k, v in outputs) == list(range(10))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1000), max_size=80),
           st.integers(1, 8))
    def test_grouping_partition_invariant(self, records, partitions):
        """Every value lands in exactly one group, keyed correctly."""
        outputs, stats = run_job(
            MapReduceJob(identity_map, collect_reduce, partitions=partitions),
            records)
        reassembled = sorted(v for _key, values in outputs for v in values)
        assert reassembled == sorted(records)
        for key, values in outputs:
            assert all(v % 7 == key for v in values)
        assert stats.pairs_emitted == len(records)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=2, max_size=60))
    def test_workers_equivalent(self, records):
        a, _ = run_job(MapReduceJob(identity_map, collect_reduce, partitions=3),
                       records)
        b, _ = run_job(MapReduceJob(identity_map, collect_reduce, partitions=3),
                       records, n_workers=2)
        assert a == b  # int keys: fully deterministic order
