"""Unit + property tests for the Matching Split distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rf import robinson_foulds
from repro.metrics.matching import matching_split_distance, split_transfer_cost
from repro.newick import trees_from_string
from repro.simulation import random_nni
from repro.trees import TaxonNamespace
from repro.util.errors import CollectionError

from tests.conftest import make_random_tree, tree_shapes

FULL4 = 0b1111


class TestTransferCost:
    def test_equal_splits_zero(self):
        assert split_transfer_cost(0b0011, 0b0011, FULL4) == 0
        assert split_transfer_cost(0b0011, 0b1100, FULL4) == 0  # complement form

    def test_crossing_quartet_splits(self):
        assert split_transfer_cost(0b0011, 0b0101, FULL4) == 2

    def test_one_move(self):
        full6 = 0b111111
        # {A,B,C}|{D,E,F} vs {A,B}|{C,D,E,F}: move C.
        assert split_transfer_cost(0b000111, 0b000011, full6) == 1

    @settings(max_examples=80, deadline=None)
    @given(st.integers(4, 16), st.data())
    def test_symmetric_and_bounded(self, n, data):
        full = (1 << n) - 1
        a = data.draw(st.integers(1, full - 1))
        b = data.draw(st.integers(1, full - 1))
        cost_ab = split_transfer_cost(a, b, full)
        assert cost_ab == split_transfer_cost(b, a, full)
        assert 0 <= cost_ab <= n // 2
        assert split_transfer_cost(a, a, full) == 0


class TestMatchingDistance:
    def test_paper_example_trees(self, paper_trees):
        assert matching_split_distance(*paper_trees) == 2

    def test_identity(self):
        t = make_random_tree(12, seed=3)
        assert matching_split_distance(t, t) == 0

    @settings(max_examples=30, deadline=None)
    @given(tree_shapes, st.integers(0, 500))
    def test_metric_properties(self, shape, seed2):
        n, seed = shape
        ns = TaxonNamespace()
        t1 = make_random_tree(n, seed=seed, namespace=ns)
        t2 = make_random_tree(n, seed=seed2, namespace=ns)
        d = matching_split_distance(t1, t2)
        assert d == matching_split_distance(t2, t1)
        assert d >= 0
        assert matching_split_distance(t1, t1) == 0

    @settings(max_examples=20, deadline=None)
    @given(tree_shapes)
    def test_refines_rf_on_nni_neighbours(self, shape):
        """One NNI changes one split by a bounded transfer: MS stays small
        while being >= 1 when RF > 0."""
        n, seed = shape
        t1 = make_random_tree(n, seed=seed)
        t2 = t1.copy()
        random_nni(t2, rng=seed)
        ms = matching_split_distance(t1, t2)
        rf = robinson_foulds(t1, t2)
        if rf == 0:
            assert ms == 0
        else:
            assert 1 <= ms <= n

    def test_zero_iff_equal_topology(self):
        trees = trees_from_string("((A,B),(C,D));\n((B,A),(D,C));")
        assert matching_split_distance(*trees) == 0

    def test_namespace_and_taxa_checks(self):
        t1 = trees_from_string("((A,B),(C,D));")[0]
        t2 = trees_from_string("((A,B),(C,D));")[0]
        with pytest.raises(CollectionError):
            matching_split_distance(t1, t2)

    def test_small_trees(self):
        trees = trees_from_string("(A,B,C);\n(C,A,B);")
        assert matching_split_distance(*trees) == 0
