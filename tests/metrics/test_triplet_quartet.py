"""Unit + property tests for triplet and quartet distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rf import robinson_foulds
from repro.metrics.quartet import (
    leaf_distance_matrix,
    n_quartets,
    quartet_distance,
    quartet_distance_sampled,
    resolve_quartet,
)
from repro.metrics.triplet import (
    lca_depth_matrix,
    n_triplets,
    resolve_triplet,
    triplet_distance,
    triplet_distance_sampled,
)
from repro.newick import parse_newick, trees_from_string
from repro.trees import TaxonNamespace
from repro.util.errors import CollectionError

from tests.conftest import make_random_tree


class TestLcaMatrix:
    def test_quartet_tree(self):
        t = parse_newick("((A,B),(C,D));")
        lca = lca_depth_matrix(t)
        assert lca[0, 1] == 1   # A,B meet below the root
        assert lca[0, 2] == 0   # A,C meet at the root
        assert lca[2, 3] == 1

    def test_symmetric(self):
        t = make_random_tree(12, seed=1)
        lca = lca_depth_matrix(t)
        assert (lca == lca.T).all()

    def test_caterpillar_depths(self):
        t = parse_newick("(((A,B),C),D);")
        lca = lca_depth_matrix(t)
        assert lca[0, 1] == 2 and lca[0, 2] == 1 and lca[0, 3] == 0


class TestTriplet:
    def test_counts(self):
        assert n_triplets(4) == 4
        assert n_triplets(10) == 120

    def test_one_triplet_difference(self):
        t1, t2 = trees_from_string("((A,B),C);\n((A,C),B);")
        assert triplet_distance(t1, t2) == 1

    def test_identity(self):
        t = make_random_tree(10, seed=2)
        assert triplet_distance(t, t) == 0

    def test_polytomy_vs_resolved(self):
        ns = TaxonNamespace(["A", "B", "C"])
        star = parse_newick("(A,B,C);", ns)
        resolved = parse_newick("((A,B),C);", ns)
        assert triplet_distance(star, resolved) == 1

    def test_symmetry_and_bound(self):
        ns = TaxonNamespace()
        t1 = make_random_tree(9, seed=3, namespace=ns)
        t2 = make_random_tree(9, seed=4, namespace=ns)
        d = triplet_distance(t1, t2)
        assert d == triplet_distance(t2, t1)
        assert 0 <= d <= n_triplets(9)

    def test_checks(self):
        t1 = parse_newick("((A,B),C);")
        t2 = parse_newick("((A,B),C);")
        with pytest.raises(CollectionError):
            triplet_distance(t1, t2)

    def test_sampled_close_to_exact(self):
        ns = TaxonNamespace()
        t1 = make_random_tree(12, seed=5, namespace=ns)
        t2 = make_random_tree(12, seed=6, namespace=ns)
        exact = triplet_distance(t1, t2) / n_triplets(12)
        estimate = triplet_distance_sampled(t1, t2, samples=4000, rng=1)
        assert abs(estimate - exact) < 0.05

    def test_sampled_validation(self):
        t = make_random_tree(6, seed=7)
        with pytest.raises(ValueError):
            triplet_distance_sampled(t, t, samples=0)


class TestQuartetResolution:
    def test_distance_matrix(self):
        t = parse_newick("((A,B),(C,D));")
        dist = leaf_distance_matrix(t)
        assert dist[0, 1] == 2
        assert dist[0, 2] == 4  # through the (degree-2) root
        assert (dist == dist.T).all()
        assert (np.diag(dist) == 0).all()

    def test_resolves_quartet(self):
        t = parse_newick("((A,B),(C,D));")
        dist = leaf_distance_matrix(t)
        assert resolve_quartet(dist, 0, 1, 2, 3) == 0  # AB|CD

    def test_star_unresolved(self):
        t = parse_newick("(A,B,C,D);")
        dist = leaf_distance_matrix(t)
        assert resolve_quartet(dist, 0, 1, 2, 3) == -1


class TestQuartetDistance:
    def test_counts(self):
        assert n_quartets(5) == 5

    def test_single_quartet(self):
        t1, t2 = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        assert quartet_distance(t1, t2) == 1
        assert quartet_distance(t1, t1) == 0

    def test_rooting_invariance(self):
        """The quartet distance must ignore the root placement."""
        ns = TaxonNamespace()
        rooted = parse_newick("(((A,B),C),(D,E));", ns)
        rerooted = parse_newick("((D,E),((A,B),C));", ns)
        assert quartet_distance(rooted, rerooted) == 0

    def test_rf_zero_implies_quartet_zero(self):
        ns = TaxonNamespace()
        t1 = make_random_tree(10, seed=8, namespace=ns)
        t2 = make_random_tree(10, seed=9, namespace=ns)
        if robinson_foulds(t1, t2) == 0:
            assert quartet_distance(t1, t2) == 0
        assert quartet_distance(t1, t1) == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 10), st.integers(0, 200), st.integers(0, 200))
    def test_metric_properties(self, n, s1, s2):
        ns = TaxonNamespace()
        t1 = make_random_tree(n, seed=s1, namespace=ns)
        t2 = make_random_tree(n, seed=s2, namespace=ns)
        d = quartet_distance(t1, t2)
        assert d == quartet_distance(t2, t1)
        assert 0 <= d <= n_quartets(n)

    def test_sampled_close_to_exact(self):
        ns = TaxonNamespace()
        t1 = make_random_tree(12, seed=10, namespace=ns)
        t2 = make_random_tree(12, seed=11, namespace=ns)
        exact = quartet_distance(t1, t2) / n_quartets(12)
        estimate = quartet_distance_sampled(t1, t2, samples=4000, rng=2)
        assert abs(estimate - exact) < 0.05

    def test_checks(self):
        t1 = parse_newick("((A,B),(C,D));")
        t2 = parse_newick("((A,B),(C,D));")
        with pytest.raises(CollectionError):
            quartet_distance(t1, t2)
