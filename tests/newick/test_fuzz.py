"""Fuzz tests: parsers must terminate with a library error, never crash.

Malformed tree files are everyday reality (truncated downloads, mixed
formats, editor mangling).  These tests feed adversarial text to the
Newick and NEXUS parsers and assert the failure contract: either a
successful parse or a :class:`ReproError` subclass — never an unhandled
exception, never a hang.
"""

from __future__ import annotations

import io

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.newick import parse_newick, write_newick
from repro.newick.io import iter_newick_strings
from repro.newick.nexus import read_nexus_trees
from repro.util.errors import ReproError

# Character soup weighted toward Newick-structural characters so the
# fuzzer actually reaches deep parser states.
newick_soup = st.text(
    alphabet=st.sampled_from(list("(),;:'[]ABCxyz0123._- \t\n")),
    max_size=80,
)


class TestNewickFuzz:
    @settings(max_examples=300, deadline=None)
    @example("((A,B),(C,D));")
    @example("(((((((")
    @example("';';';'")
    @example("(A:(B));")
    @example("[[[]]];")
    @example("(A)(B);")
    @example(");(")
    @given(newick_soup)
    def test_parse_contract(self, text):
        try:
            tree = parse_newick(text)
        except ReproError:
            return
        # Successful parses must produce a serializable tree.
        assert write_newick(tree).endswith(";")

    @settings(max_examples=200, deadline=None)
    @given(newick_soup)
    def test_record_splitter_contract(self, text):
        try:
            records = list(iter_newick_strings(io.StringIO(text)))
        except ReproError:
            return
        for record in records:
            assert record.endswith(";")

    @settings(max_examples=150, deadline=None)
    @given(st.lists(newick_soup, max_size=5))
    def test_multirecord_streams(self, chunks):
        stream = io.StringIO("\n".join(chunks))
        try:
            for record in iter_newick_strings(stream):
                try:
                    parse_newick(record)
                except ReproError:
                    pass
        except ReproError:
            pass


nexus_soup = st.text(
    alphabet=st.sampled_from(list("(),;:'=#NEXUSBEGINTREESTRANSLATED abc123\n\t")),
    max_size=120,
)


class TestNexusFuzz:
    @settings(max_examples=200, deadline=None)
    @given(nexus_soup)
    def test_reader_contract(self, text):
        try:
            trees = read_nexus_trees(io.StringIO(text))
        except ReproError:
            return
        for tree in trees:
            assert tree.n_leaves >= 1

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_unicode(self, text):
        try:
            read_nexus_trees(io.StringIO("#NEXUS\n" + text))
        except ReproError:
            pass
