"""Unit tests for repro.newick.io (streaming multi-tree files)."""

import io

import pytest

from repro.newick.io import (
    iter_newick_file,
    iter_newick_strings,
    read_newick_file,
    trees_from_string,
    trees_to_string,
    write_newick_file,
)
from repro.trees import TaxonNamespace
from repro.util.errors import NewickParseError

from tests.conftest import make_collection


class TestIterNewickStrings:
    def test_one_per_line(self):
        records = list(iter_newick_strings(io.StringIO("(A,B);\n(C,D);\n")))
        assert records == ["(A,B);", "(C,D);"]

    def test_multiline_record(self):
        text = "((A,\nB),\n(C,D));\n(A,B);\n"
        records = list(iter_newick_strings(io.StringIO(text)))
        assert len(records) == 2
        assert records[0].replace("\n", "") == "((A,B),(C,D));"

    def test_multiple_records_one_line(self):
        records = list(iter_newick_strings(io.StringIO("(A,B);(C,D);")))
        assert records == ["(A,B);", "(C,D);"]

    def test_blank_and_comment_lines_skipped(self):
        text = "# a comment\n\n(A,B);\n\n# another\n(C,D);\n"
        assert len(list(iter_newick_strings(io.StringIO(text)))) == 2

    def test_semicolon_in_quotes_not_a_separator(self):
        records = list(iter_newick_strings(io.StringIO("('a;b',C);\n")))
        assert records == ["('a;b',C);"]

    def test_semicolon_in_comment_not_a_separator(self):
        records = list(iter_newick_strings(io.StringIO("(A[x;y],B);\n")))
        assert records == ["(A[x;y],B);"]

    def test_trailing_garbage_raises(self):
        with pytest.raises(NewickParseError):
            list(iter_newick_strings(io.StringIO("(A,B);\n(C,D)")))

    def test_empty_stream(self):
        assert list(iter_newick_strings(io.StringIO(""))) == []


class TestFileRoundtrip:
    def test_write_then_stream(self, tmp_path):
        trees = make_collection(10, 8, seed=5)
        path = tmp_path / "trees.nwk"
        assert write_newick_file(path, trees) == 8
        ns = TaxonNamespace()
        loaded = list(iter_newick_file(path, ns))
        assert len(loaded) == 8
        assert all(t.n_leaves == 10 for t in loaded)

    def test_streaming_is_lazy(self, tmp_path):
        trees = make_collection(6, 5, seed=6)
        path = tmp_path / "trees.nwk"
        write_newick_file(path, trees)
        it = iter_newick_file(path)
        first = next(it)
        assert first.n_leaves == 6  # no need to exhaust

    def test_read_newick_file_shares_namespace(self, tmp_path):
        trees = make_collection(6, 4, seed=7)
        path = tmp_path / "trees.nwk"
        write_newick_file(path, trees)
        loaded = read_newick_file(path)
        assert all(t.taxon_namespace is loaded[0].taxon_namespace for t in loaded)

    def test_topology_preserved(self, tmp_path):
        from repro.bipartitions import bipartition_masks

        trees = make_collection(12, 6, seed=8)
        path = tmp_path / "trees.nwk"
        write_newick_file(path, trees)
        ns = TaxonNamespace(trees[0].taxon_namespace.labels)
        loaded = read_newick_file(path, ns)
        for original, copy in zip(trees, loaded):
            assert bipartition_masks(original) == bipartition_masks(copy)

    def test_parse_error_reports_record(self, tmp_path):
        path = tmp_path / "bad.nwk"
        path.write_text("(A,B);\n(C,,D);\n")
        with pytest.raises(NewickParseError) as err:
            list(iter_newick_file(path))
        assert "record 2" in str(err.value)

    def test_unweighted_write(self, tmp_path):
        trees = make_collection(6, 3, seed=9)
        path = tmp_path / "unweighted.nwk"
        write_newick_file(path, trees, include_lengths=False)
        assert ":" not in path.read_text()


class TestStringHelpers:
    def test_trees_to_from_string(self):
        trees = make_collection(8, 4, seed=10)
        text = trees_to_string(trees)
        again = trees_from_string(text)
        assert len(again) == 4
        assert again[0].n_leaves == 8

    def test_trees_from_string_shared_namespace(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        assert trees[0].taxon_namespace is trees[1].taxon_namespace
