"""Tests for gzip-transparent IO and the NEXUS writer."""

import gzip

import pytest
from hypothesis import given, settings

from repro.bipartitions import bipartition_masks, bipartitions_with_lengths
from repro.newick.io import open_tree_file, read_newick_file, write_newick_file
from repro.newick.nexus import read_nexus_trees
from repro.newick.nexus_writer import nexus_string, write_nexus_file
from repro.trees import TaxonNamespace
from repro.util.errors import CollectionError

from tests.conftest import collection_shapes, make_collection


class TestGzipIO:
    def test_roundtrip_gz(self, tmp_path):
        trees = make_collection(10, 6, seed=1)
        path = tmp_path / "trees.nwk.gz"
        assert write_newick_file(path, trees) == 6
        # The file is genuinely gzipped.
        with gzip.open(path, "rt") as fh:
            assert fh.readline().strip().endswith(";")
        loaded = read_newick_file(path, TaxonNamespace(trees[0].taxon_namespace.labels))
        assert len(loaded) == 6
        for a, b in zip(trees, loaded):
            assert bipartition_masks(a) == bipartition_masks(b)

    def test_plain_unchanged(self, tmp_path):
        trees = make_collection(6, 3, seed=2)
        path = tmp_path / "plain.nwk"
        write_newick_file(path, trees)
        raw = path.read_bytes()
        assert raw.startswith(b"(")  # not gzip magic

    def test_open_mode_validation(self, tmp_path):
        with pytest.raises(ValueError):
            open_tree_file(tmp_path / "x", "a")

    def test_gz_smaller_than_plain(self, tmp_path):
        trees = make_collection(24, 60, seed=3)
        plain = tmp_path / "c.nwk"
        packed = tmp_path / "c.nwk.gz"
        write_newick_file(plain, trees)
        write_newick_file(packed, trees)
        assert packed.stat().st_size < plain.stat().st_size / 2


class TestNexusWriter:
    def test_roundtrip_topology_and_lengths(self, tmp_path):
        trees = make_collection(10, 5, seed=4)
        path = tmp_path / "out.nex"
        assert write_nexus_file(path, trees) == 5
        ns = TaxonNamespace(trees[0].taxon_namespace.labels)
        loaded = read_nexus_trees(path, ns)
        assert len(loaded) == 5
        for a, b in zip(trees, loaded):
            assert bipartition_masks(a) == bipartition_masks(b)
            wa = bipartitions_with_lengths(a)
            wb = bipartitions_with_lengths(b)
            assert set(wa) == set(wb)
            for mask in wa:
                assert wa[mask] == pytest.approx(wb[mask], rel=1e-9)

    def test_untranslated_form(self, tmp_path):
        trees = make_collection(8, 3, seed=5)
        path = tmp_path / "plain.nex"
        write_nexus_file(path, trees, translate=False)
        text = path.read_text()
        assert "TRANSLATE" not in text
        loaded = read_nexus_trees(path)
        assert len(loaded) == 3

    def test_gzipped_nexus(self, tmp_path):
        import io as _io

        trees = make_collection(8, 4, seed=6)
        path = tmp_path / "c.nex.gz"
        write_nexus_file(path, trees)
        with gzip.open(path, "rt") as fh:
            loaded = read_nexus_trees(_io.StringIO(fh.read()))
        assert len(loaded) == 4

    def test_string_form_structure(self):
        trees = make_collection(6, 2, seed=7)
        text = nexus_string(trees)
        assert text.startswith("#NEXUS")
        assert "BEGIN TAXA;" in text and "BEGIN TREES;" in text
        assert text.count("TREE tree_") == 2

    def test_empty_rejected(self):
        with pytest.raises(CollectionError):
            nexus_string([])

    def test_mixed_namespace_rejected(self):
        a = make_collection(6, 1, seed=8)
        b = make_collection(6, 1, seed=9)
        with pytest.raises(CollectionError):
            nexus_string(a + b)

    @settings(max_examples=15, deadline=None)
    @given(collection_shapes)
    def test_roundtrip_property(self, shape):
        import tempfile, os
        n, r, seed = shape
        trees = make_collection(n, r, seed=seed)
        path = os.path.join(tempfile.mkdtemp(prefix="nx"), "t.nex")
        write_nexus_file(path, trees, include_lengths=False)
        loaded = read_nexus_trees(
            path, TaxonNamespace(trees[0].taxon_namespace.labels))
        assert len(loaded) == r
        for a, b in zip(trees, loaded):
            assert bipartition_masks(a) == bipartition_masks(b)
