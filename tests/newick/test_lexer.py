"""Unit tests for repro.newick.lexer."""

import pytest

from repro.newick.lexer import Token, TokenType, tokenize
from repro.util.errors import NewickParseError


def types(text):
    return [t.type.name for t in tokenize(text)]


def labels(text):
    return [t.value for t in tokenize(text) if t.type is TokenType.LABEL]


class TestStructural:
    def test_basic_sequence(self):
        assert types("(A,B);") == ["LPAREN", "LABEL", "COMMA", "LABEL",
                                   "RPAREN", "SEMICOLON", "EOF"]

    def test_colon_and_length(self):
        assert labels("(A:0.5,B:1e-3);") == ["A", "0.5", "B", "1e-3"]

    def test_whitespace_skipped(self):
        assert types(" ( A ,\tB ) ;\n") == types("(A,B);")

    def test_empty_input_only_eof(self):
        assert types("") == ["EOF"]

    def test_positions_recorded(self):
        tokens = list(tokenize("(AB,C);"))
        assert tokens[0].position == 0
        assert tokens[1].position == 1
        assert tokens[3].position == 4


class TestQuotedLabels:
    def test_simple_quote(self):
        assert labels("('Homo sapiens',B);") == ["Homo sapiens", "B"]

    def test_structural_chars_inside_quotes(self):
        assert labels("('a(b,c);:d',B);") == ["a(b,c);:d", "B"]

    def test_doubled_quote_escape(self):
        assert labels("('it''s',B);") == ["it's", "B"]

    def test_unterminated_quote(self):
        with pytest.raises(NewickParseError):
            list(tokenize("('abc,B);"))

    def test_empty_quoted_label(self):
        assert labels("('',B);") == ["", "B"]


class TestComments:
    def test_comment_skipped(self):
        assert labels("(A[this is a comment],B);") == ["A", "B"]

    def test_comment_with_structural_chars(self):
        assert labels("(A[,;()],B);") == ["A", "B"]

    def test_unterminated_comment(self):
        with pytest.raises(NewickParseError):
            list(tokenize("(A[oops,B);"))


class TestErrors:
    def test_stray_close_bracket(self):
        with pytest.raises(NewickParseError):
            list(tokenize("(A]B);"))

    def test_error_carries_position(self):
        try:
            list(tokenize("(A']"))
        except NewickParseError as exc:
            assert exc.position == 2
        else:  # pragma: no cover
            pytest.fail("expected NewickParseError")


class TestUnquotedLabels:
    def test_underscores_kept_verbatim(self):
        assert labels("(Homo_sapiens,B);") == ["Homo_sapiens", "B"]

    def test_numeric_labels(self):
        assert labels("(1,2);") == ["1", "2"]

    def test_special_free_chars(self):
        assert labels("(a-b.c|d,B);") == ["a-b.c|d", "B"]
