"""Unit tests for the minimal NEXUS TREES reader."""

import io

import pytest

from repro.bipartitions import bipartition_masks
from repro.newick import parse_newick
from repro.newick.nexus import iter_nexus_trees, parse_translate_block, read_nexus_trees
from repro.trees import TaxonNamespace
from repro.util.errors import NewickParseError

BASIC = """#NEXUS
BEGIN TREES;
  TRANSLATE
    1 A,
    2 B,
    3 C,
    4 D;
  TREE t1 = [&U] ((1,2),(3,4));
  TREE t2 = [&R] ((1,3),(2,4));
END;
"""

NO_TRANSLATE = """#NEXUS
BEGIN TREES;
  TREE one = ((A,B),(C,D));
END;
"""

WITH_OTHER_BLOCKS = """#NEXUS
BEGIN TAXA;
  DIMENSIONS NTAX=4;
  TAXLABELS A B C D;
END;
BEGIN TREES;
  TREE a = ((A,B),(C,D));
END;
BEGIN NOTES;
  TEXT whatever;
END;
"""


class TestTranslate:
    def test_basic_table(self):
        assert parse_translate_block("TRANSLATE 1 Homo_sapiens, 2 Pan") == {
            "1": "Homo_sapiens", "2": "Pan"}

    def test_quoted_labels(self):
        table = parse_translate_block("TRANSLATE 1 'Homo sapiens'")
        assert table == {"1": "Homo sapiens"}

    def test_malformed_entry(self):
        with pytest.raises(NewickParseError):
            parse_translate_block("TRANSLATE justonetoken,")

    def test_quoted_label_with_comma(self):
        """Regression (selfcheck-found): the entry splitter used to cut
        quoted labels at their internal commas."""
        table = parse_translate_block("TRANSLATE 1 'c,d', 2 X")
        assert table == {"1": "c,d", "2": "X"}

    def test_quoted_label_with_escaped_quote(self):
        table = parse_translate_block("TRANSLATE 1 'it''s'")
        assert table == {"1": "it's"}

    def test_quoted_label_with_spaces_and_structure(self):
        table = parse_translate_block(
            "TRANSLATE 1 'taxon one', 2 'a(b)', 3 'x:y'")
        assert table == {"1": "taxon one", "2": "a(b)", "3": "x:y"}


class TestQuoteAwareStatements:
    def test_quoted_semicolon_label(self):
        """Regression (selfcheck-found): ``;`` inside a quoted label used
        to terminate the statement early."""
        text = ("#NEXUS\nBEGIN TREES;\n"
                "TREE t = (('semi;colon',B),(C,D));\nEND;\n")
        trees = read_nexus_trees(io.StringIO(text))
        assert sorted(trees[0].leaf_labels()) == ["B", "C", "D", "semi;colon"]

    def test_quoted_bracket_label_not_a_comment(self):
        text = ("#NEXUS\nBEGIN TREES;\n"
                "TREE t = (('q[z]',B),(C,D));\nEND;\n")
        trees = read_nexus_trees(io.StringIO(text))
        assert sorted(trees[0].leaf_labels()) == ["B", "C", "D", "q[z]"]

    def test_translate_with_quoted_semicolon(self):
        text = ("#NEXUS\nBEGIN TREES;\n"
                "TRANSLATE 1 'semi;colon', 2 B, 3 C, 4 D;\n"
                "TREE t = ((1,2),(3,4));\nEND;\n")
        trees = read_nexus_trees(io.StringIO(text))
        assert sorted(trees[0].leaf_labels()) == ["B", "C", "D", "semi;colon"]

    def test_comment_between_statements_still_stripped(self):
        text = ("#NEXUS\nBEGIN TREES;\n"
                "[a block comment; with a semicolon]\n"
                "TREE t = [&U] ((A,B),(C,D));\nEND;\n")
        trees = read_nexus_trees(io.StringIO(text))
        assert trees[0].n_leaves == 4


class TestReader:
    def test_basic_file(self):
        trees = read_nexus_trees(io.StringIO(BASIC))
        assert len(trees) == 2
        assert sorted(trees[0].leaf_labels()) == ["A", "B", "C", "D"]
        assert bipartition_masks(trees[0]) == {0b0011}

    def test_shared_namespace_across_trees(self):
        trees = read_nexus_trees(io.StringIO(BASIC))
        assert trees[0].taxon_namespace is trees[1].taxon_namespace

    def test_no_translate(self):
        trees = read_nexus_trees(io.StringIO(NO_TRANSLATE))
        assert sorted(trees[0].leaf_labels()) == ["A", "B", "C", "D"]

    def test_other_blocks_skipped(self):
        trees = read_nexus_trees(io.StringIO(WITH_OTHER_BLOCKS))
        assert len(trees) == 1

    def test_missing_header_rejected(self):
        with pytest.raises(NewickParseError):
            read_nexus_trees(io.StringIO("BEGIN TREES; TREE a = (A,B); END;"))

    def test_string_input(self):
        trees = read_nexus_trees(BASIC)
        assert len(trees) == 2

    def test_path_input(self, tmp_path):
        path = tmp_path / "trees.nex"
        path.write_text(BASIC)
        trees = read_nexus_trees(path)
        assert len(trees) == 2

    def test_streaming(self):
        it = iter_nexus_trees(io.StringIO(BASIC))
        first = next(it)
        assert first.n_leaves == 4

    def test_external_namespace(self):
        ns = TaxonNamespace(["A", "B", "C", "D"])
        trees = read_nexus_trees(io.StringIO(BASIC), ns)
        assert trees[0].taxon_namespace is ns
        assert len(ns) == 4

    def test_comparable_with_newick_parsed_trees(self):
        """NEXUS trees must interoperate with Newick-parsed ones."""
        from repro.core.rf import robinson_foulds

        ns = TaxonNamespace()
        nexus_trees = read_nexus_trees(io.StringIO(BASIC), ns)
        newick_tree = parse_newick("((A,B),(C,D));", ns)
        assert robinson_foulds(nexus_trees[0], newick_tree) == 0
        assert robinson_foulds(nexus_trees[1], newick_tree) == 2

    def test_multiline_tree_statement(self):
        text = "#NEXUS\nBEGIN TREES;\nTREE x =\n ((A,B),\n (C,D));\nEND;\n"
        trees = read_nexus_trees(io.StringIO(text))
        assert trees[0].n_leaves == 4

    def test_star_tree_annotations_stripped(self):
        text = "#NEXUS\nBEGIN TREES;\nTREE * best = [&U][&lnL=-5] ((A,B),(C,D));\nEND;\n"
        trees = read_nexus_trees(io.StringIO(text))
        assert trees[0].n_leaves == 4
