"""Unit tests for repro.newick.parser."""

import pytest

from repro.newick import parse_newick
from repro.trees import TaxonNamespace
from repro.util.errors import NewickParseError, TaxonError


class TestBasicParsing:
    def test_quartet(self):
        t = parse_newick("((A,B),(C,D));")
        assert t.n_leaves == 4
        assert t.leaf_labels() == ["A", "B", "C", "D"]

    def test_polytomy(self):
        t = parse_newick("(A,B,C,D,E);")
        assert len(t.root.children) == 5

    def test_nested_depth(self):
        t = parse_newick("(((((A,B),C),D),E),F);")
        assert t.n_leaves == 6

    def test_branch_lengths(self):
        t = parse_newick("((A:1.5,B:2):0.25,(C:1e-2,D:3E1):0);")
        lengths = {l.taxon.label: l.length for l in t.leaves()}
        assert lengths == {"A": 1.5, "B": 2.0, "C": 0.01, "D": 30.0}

    def test_internal_labels(self):
        t = parse_newick("((A,B)clade1:0.5,(C,D)clade2);")
        internal = [n for n in t.internal_nodes() if n.label]
        assert sorted(n.label for n in internal) == ["clade1", "clade2"]

    def test_negative_branch_length(self):
        t = parse_newick("(A:-0.5,B:1);")
        assert next(t.leaves()).length == -0.5

    def test_bare_leaf_tree(self):
        t = parse_newick("A;")
        assert t.n_leaves == 1
        assert t.root.taxon.label == "A"

    def test_bare_leaf_with_length(self):
        t = parse_newick("A:3.5;")
        assert t.root.length == 3.5

    def test_quoted_labels(self):
        t = parse_newick("(('Homo sapiens','Pan (chimp)'),(C,D));")
        assert "Homo sapiens" in t.taxon_namespace
        assert "Pan (chimp)" in t.taxon_namespace

    def test_underscores_to_spaces_option(self):
        t = parse_newick("(Homo_sapiens,B);", underscores_to_spaces=True)
        assert "Homo sapiens" in t.taxon_namespace

    def test_comments_ignored(self):
        t = parse_newick("((A[&support=1],B),(C,D))[whole tree];")
        assert t.n_leaves == 4

    def test_whitespace_and_newlines(self):
        t = parse_newick("(\n (A , B) ,\n (C, D)\n) ;")
        assert t.n_leaves == 4


class TestNamespaceBinding:
    def test_shared_namespace(self):
        ns = TaxonNamespace()
        t1 = parse_newick("((A,B),(C,D));", ns)
        t2 = parse_newick("((D,C),(B,A));", ns)
        assert t1.taxon_namespace is t2.taxon_namespace
        assert len(ns) == 4

    def test_fresh_namespace_when_none(self):
        t1 = parse_newick("(A,B,C);")
        t2 = parse_newick("(A,B,C);")
        assert t1.taxon_namespace is not t2.taxon_namespace

    def test_duplicate_taxon_in_one_tree(self):
        with pytest.raises(TaxonError):
            parse_newick("((A,B),(A,C));")

    def test_duplicate_across_trees_is_fine(self):
        ns = TaxonNamespace()
        parse_newick("((A,B),(C,D));", ns)
        parse_newick("((A,B),(C,D));", ns)
        assert len(ns) == 4


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "((A,B),(C,D))",       # missing semicolon
        "((A,B),(C,D)",        # unbalanced
        "(A,B));",             # extra close
        "(A,,B);",             # empty subtree
        "();",                 # empty group
        "(A:;B);",             # missing length after colon
        "(A:x,B);",            # bad length
        ",A;",                 # leading comma
        "(A B);",              # two labels with no separator: B is internal label misplace
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(NewickParseError):
            parse_newick(bad)

    def test_error_position_reported(self):
        try:
            parse_newick("((A,B),(C,D)");
        except NewickParseError as exc:
            assert "position" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected NewickParseError")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(NewickParseError):
            parse_newick("(A,(B,C);")


class TestLargeInput:
    def test_deep_ladder_parses_iteratively(self):
        n = 2000
        text = "(" * (n - 1) + "t0"
        for i in range(1, n):
            text += f",t{i})"
        text += ";"
        t = parse_newick(text)
        assert t.n_leaves == n
