"""Property-based round-trip tests: parse(write(tree)) preserves everything."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bipartitions import bipartition_masks, bipartitions_with_lengths
from repro.newick import parse_newick, write_newick
from repro.trees import TaxonNamespace

from tests.conftest import make_random_tree, tree_shapes


@settings(max_examples=50, deadline=None)
@given(tree_shapes)
def test_topology_roundtrip(shape):
    n, seed = shape
    tree = make_random_tree(n, seed=seed, with_lengths=False)
    text = write_newick(tree)
    ns = TaxonNamespace(tree.taxon_namespace.labels)
    again = parse_newick(text, ns)
    assert bipartition_masks(again) == bipartition_masks(tree)
    assert again.leaf_labels() == tree.leaf_labels()


@settings(max_examples=50, deadline=None)
@given(tree_shapes)
def test_lengths_roundtrip_exact(shape):
    n, seed = shape
    tree = make_random_tree(n, seed=seed, with_lengths=True)
    text = write_newick(tree)  # repr precision: exact float round trip
    ns = TaxonNamespace(tree.taxon_namespace.labels)
    again = parse_newick(text, ns)
    assert bipartitions_with_lengths(again) == bipartitions_with_lengths(tree)


@settings(max_examples=50, deadline=None)
@given(tree_shapes)
def test_double_roundtrip_fixed_point(shape):
    n, seed = shape
    tree = make_random_tree(n, seed=seed)
    once = write_newick(tree)
    ns = TaxonNamespace(tree.taxon_namespace.labels)
    twice = write_newick(parse_newick(once, ns))
    assert once == twice


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        min_size=1, max_size=12,
    ),
    min_size=4, max_size=12, unique=True,
))
def test_arbitrary_labels_survive_quoting(labels):
    # Build a star tree over arbitrary printable labels; quoting must make
    # the output parseable and label-preserving.
    ns = TaxonNamespace(labels)
    from repro.trees.node import Node
    from repro.trees.tree import Tree

    root = Node()
    for label in labels:
        root.add_child(Node(ns[label]))
    tree = Tree(root, ns)
    text = write_newick(tree)
    again = parse_newick(text)
    assert again.leaf_labels() == labels
