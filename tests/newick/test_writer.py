"""Unit tests for repro.newick.writer."""

import pytest

from repro.newick import format_label, parse_newick, write_newick


class TestFormatLabel:
    def test_plain(self):
        assert format_label("Homo_sapiens") == "Homo_sapiens"

    def test_space_quoted(self):
        assert format_label("Homo sapiens") == "'Homo sapiens'"

    def test_structural_quoted(self):
        assert format_label("a,b") == "'a,b'"
        assert format_label("a(b") == "'a(b'"

    def test_quote_doubled(self):
        assert format_label("it's") == "'it''s'"

    def test_empty_label_quoted(self):
        assert format_label("") == "''"


class TestWrite:
    def test_topology_only(self):
        assert write_newick(parse_newick("((A,B),(C,D));")) == "((A,B),(C,D));"

    def test_polytomy(self):
        assert write_newick(parse_newick("(A,B,C);")) == "(A,B,C);"

    def test_lengths_repr_roundtrip(self):
        text = "((A:1.5,B:2.0):0.25,(C:0.01,D:30.0):0.0);"
        assert parse_newick(write_newick(parse_newick(text))).n_leaves == 4

    def test_lengths_excluded(self):
        t = parse_newick("((A:1,B:2):3,(C:4,D:5):6);")
        assert write_newick(t, include_lengths=False) == "((A,B),(C,D));"

    def test_internal_labels(self):
        t = parse_newick("((A,B)x,(C,D)y);")
        assert write_newick(t) == "((A,B)x,(C,D)y);"
        assert write_newick(t, include_internal_labels=False) == "((A,B),(C,D));"

    def test_precision(self):
        t = parse_newick("(A:0.123456789,B:1);")
        out = write_newick(t, precision=3)
        assert "0.123" in out and "0.123456789" not in out

    def test_quoting_roundtrip(self):
        text = "(('Homo sapiens','it''s'),(C,D));"
        t = parse_newick(text)
        again = parse_newick(write_newick(t))
        assert sorted(again.leaf_labels()) == sorted(t.leaf_labels())

    def test_bare_leaf(self):
        assert write_newick(parse_newick("A;")) == "A;"

    def test_deep_tree_no_recursion(self):
        n = 2000
        text = "(" * (n - 1) + "t0"
        for i in range(1, n):
            text += f",t{i})"
        text += ";"
        t = parse_newick(text)
        out = write_newick(t)
        assert out.count("(") == n - 1
