"""Shared fixture: observability is process-global state — every test
that flips it on must restore a clean, disabled world afterwards."""

import pytest

import repro.observability as obs


@pytest.fixture
def observed():
    """Enable span/metric collection (with memory tracking) for one test."""
    obs.reset()
    obs.enable(memory=True)
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()


@pytest.fixture
def observed_no_memory():
    """Enable collection without tracemalloc (timing-only spans)."""
    obs.reset()
    obs.enable(memory=False)
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
