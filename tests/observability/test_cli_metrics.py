"""End-to-end CLI observability: --metrics-out, --trace, --quiet.

These encode the PR's acceptance criterion: ``bfhrf avg-rf Q --metrics-out
run.json`` must produce a JSON document whose spans include ``parse``,
``bfh.build`` and ``bfhrf.query`` (each with wall-time and peak-memory
fields) and whose counters cover trees parsed and bipartitions hashed.
"""

import json

import pytest

import repro.observability as obs
from repro.cli import main
from repro.observability.export import RunReport


@pytest.fixture
def quartet_file(tmp_path):
    path = tmp_path / "trees.nwk"
    path.write_text("((A,B),(C,D));\n((A,C),(B,D));\n((A,B),(C,D));\n")
    return str(path)


@pytest.fixture(autouse=True)
def _clean_observability():
    yield
    obs.disable()
    obs.reset()


class TestMetricsOut:
    def test_avg_rf_writes_acceptance_report(self, quartet_file, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["avg-rf", quartet_file, "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        report = RunReport.from_dict(doc)

        # The default method is the registry's promoted fast path (shm),
        # whose query span is shmrf.query.
        for name in ("parse", "bfh.build", "shmrf.query"):
            spans = report.find_spans(name)
            assert spans, f"span {name!r} missing from report"
            for span in spans:
                assert span["wall_s"] is not None and span["wall_s"] >= 0
                assert span["peak_mb"] is not None and span["peak_mb"] >= 0

        assert report.counter("newick.trees_parsed") == 3
        assert report.counter("bfh.bipartitions_hashed") == 3
        # The shm fast path probes through the vectorized kernel, so the
        # query-side evidence is the batched-probe histograms rather than
        # the dict hash's hit/miss counters.
        probes = report.metrics["histograms"]["vectorized.probe_keys"]
        assert probes["count"] >= 1
        assert probes["sum"] >= 3  # every query tree's splits probed
        # stdout (the results) is untouched by observability
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_matrix_report(self, quartet_file, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["matrix", quartet_file, "--metrics-out", str(out)]) == 0
        report = RunReport.from_dict(json.loads(out.read_text()))
        assert report.find_spans("parse")
        assert report.find_spans("hashrf.matrix")
        assert report.counter("newick.trees_parsed") == 3
        assert report.find_spans("cli.matrix")

    def test_global_flag_accepted_before_subcommand(self, quartet_file, tmp_path,
                                                    capsys):
        out = tmp_path / "run.json"
        assert main(["--metrics-out", str(out), "avg-rf", quartet_file]) == 0
        assert json.loads(out.read_text())["command"] == "bfhrf avg-rf"

    def test_workers_merge_into_report(self, quartet_file, tmp_path, capsys):
        from repro.core.parallel import fork_available
        if not fork_available():
            pytest.skip("fork start method unavailable")
        out = tmp_path / "run.json"
        assert main(["avg-rf", quartet_file, "--workers", "2",
                     "--metrics-out", str(out)]) == 0
        report = RunReport.from_dict(json.loads(out.read_text()))
        assert report.counter("parallel.tasks") >= 1
        hist = report.metrics["histograms"]["parallel.task_seconds"]
        assert hist["count"] == report.counter("parallel.tasks")

    def test_unwritable_path_fails_cleanly(self, quartet_file, tmp_path, capsys):
        bad = tmp_path / "no-such-dir" / "run.json"
        assert main(["avg-rf", quartet_file, "--metrics-out", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "cannot write run report" in captured.err
        # the analysis itself succeeded; its results still reach stdout
        assert len(captured.out.strip().splitlines()) == 3

    def test_observability_off_without_flags(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file]) == 0
        assert not obs.enabled()
        assert obs.finished_spans() == []


class TestTraceFlag:
    def test_trace_prints_span_tree(self, quartet_file, capsys):
        assert main(["--trace", "avg-rf", quartet_file]) == 0
        err = capsys.readouterr().err
        for name in ("cli.avg-rf", "parse", "bfh.build", "shmrf.query"):
            assert name in err

    def test_trace_survives_quiet(self, quartet_file, capsys):
        assert main(["--trace", "--quiet", "avg-rf", quartet_file]) == 0
        err = capsys.readouterr().err
        assert "shmrf.query" in err
        assert "wall time" not in err


class TestQuietFlag:
    def test_quiet_silences_stderr(self, quartet_file, capsys):
        assert main(["--quiet", "avg-rf", quartet_file]) == 0
        assert capsys.readouterr().err == ""

    def test_quiet_after_subcommand(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file, "--quiet"]) == 0
        assert capsys.readouterr().err == ""

    def test_default_still_reports_wall_time(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file]) == 0
        assert "wall time" in capsys.readouterr().err
