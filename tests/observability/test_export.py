"""RunReport round-trips, JSON-lines, rendering, and the Reporter."""

import io
import json

import repro.observability as obs
from repro.observability.export import (
    Reporter,
    RunReport,
    host_env,
    iter_jsonl,
    render_span_tree,
    write_jsonl,
)
from repro.observability.spans import trace


def _sample_report(command="bfhrf test"):
    with trace("outer", q=2) as span:
        with trace("inner"):
            pass
        span.set(done=True)
    obs.counter("newick.trees_parsed").inc(3)
    obs.histogram("parallel.task_seconds").observe(0.25)
    return RunReport.collect(command, records=[{"algorithm": "BFHRF"}],
                             extra={"argv": ["test"]})


class TestRunReport:
    def test_collect_snapshots_spans_and_metrics(self, observed):
        report = _sample_report()
        assert [s["name"] for s in report.spans] == ["outer"]
        assert report.spans[0]["children"][0]["name"] == "inner"
        assert report.counter("newick.trees_parsed") == 3
        assert report.records == [{"algorithm": "BFHRF"}]
        assert report.extra["argv"] == ["test"]

    def test_json_round_trip(self, observed):
        report = _sample_report()
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_write_is_valid_json(self, observed, tmp_path):
        report = _sample_report()
        path = tmp_path / "run.json"
        report.write(path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == RunReport.SCHEMA_VERSION
        assert doc["command"] == "bfhrf test"
        assert doc["env"]["python"]

    def test_find_spans_searches_depth_first(self, observed):
        report = _sample_report()
        assert len(report.find_spans("inner")) == 1
        assert report.find_spans("absent") == []

    def test_span_fields_present(self, observed):
        report = _sample_report()
        outer = report.spans[0]
        assert outer["wall_s"] >= 0
        assert outer["peak_mb"] is not None  # memory=True fixture
        assert outer["attrs"] == {"q": 2, "done": True}

    def test_render_mentions_spans_and_counters(self, observed):
        text = _sample_report().render()
        assert "outer" in text and "inner" in text
        assert "newick.trees_parsed" in text

    def test_host_env_keys(self):
        env = host_env()
        for key in ("platform", "python", "hostname", "cpu_count", "pid"):
            assert key in env

    def test_collect_attaches_peak_rss(self, observed):
        report = _sample_report()
        assert report.memory["rss_peak_mb"] > 0
        assert "rss_peak" in report.render()

    def test_json_round_trip_equality_with_histograms(self, observed):
        for value in (0.001, 0.25, 0.25, 3.75, 120.0):
            obs.histogram("store.query_seconds").observe(value)
        report = _sample_report()
        clone = RunReport.from_json(report.to_json())
        assert clone == report  # dataclass equality, every field
        summary = clone.metrics["histograms"]["store.query_seconds"]
        assert summary["count"] == 5
        assert summary["buckets"] and all(
            isinstance(k, str) for k in summary["buckets"])

    def test_render_shows_histogram_percentiles(self, observed):
        obs.histogram("parallel.task_seconds").observe(0.5)
        text = RunReport.collect("bfhrf test").render()
        assert "p50=" in text and "p99=" in text


class TestJsonl:
    def test_lines_are_json_with_paths(self, observed, tmp_path):
        report = _sample_report()
        lines = [json.loads(line) for line in iter_jsonl(report)]
        span_paths = [l["path"] for l in lines if l["type"] == "span"]
        assert span_paths == ["outer", "outer/inner"]
        assert lines[-1]["type"] == "metrics"
        path = tmp_path / "run.jsonl"
        assert write_jsonl(path, report) == len(lines)
        assert len(path.read_text().splitlines()) == len(lines)

    def test_non_ascii_taxon_names_survive_jsonl(self, observed, tmp_path):
        with trace("bfh.build", taxon="Å𝛼-Ωß"):
            with trace("parse", file="trees_日本語.nwk"):
                pass
        report = RunReport.collect("bfhrf avg-rf")
        lines = [json.loads(line) for line in iter_jsonl(report)]
        spans = [l for l in lines if l["type"] == "span"]
        assert spans[0]["attrs"]["taxon"] == "Å𝛼-Ωß"
        assert spans[1]["attrs"]["file"] == "trees_日本語.nwk"
        path = tmp_path / "run.jsonl"
        write_jsonl(path, report)
        reread = [json.loads(line)
                  for line in path.read_text(encoding="utf-8").splitlines()]
        assert reread == lines
        clone = RunReport.from_json(report.to_json())
        assert clone == report


class TestRenderSpanTree:
    def test_indentation_reflects_depth(self, observed):
        report = _sample_report()
        lines = render_span_tree(report.spans).splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")

    def test_empty_tree(self):
        assert render_span_tree([]) == ""


class TestReporter:
    def test_info_suppressed_by_quiet(self):
        buf = io.StringIO()
        Reporter(quiet=True, stream=buf).info("hidden")
        assert buf.getvalue() == ""

    def test_info_emitted_by_default(self):
        buf = io.StringIO()
        Reporter(stream=buf).info("visible")
        assert buf.getvalue() == "visible\n"

    def test_always_ignores_quiet(self):
        buf = io.StringIO()
        Reporter(quiet=True, stream=buf).always("trace output")
        assert buf.getvalue() == "trace output\n"
