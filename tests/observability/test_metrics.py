"""Metrics: registry semantics, snapshot/merge, and the fork-worker path."""

import pytest

import repro.observability as obs
from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.core.parallel import dsmp_average_rf, fork_available
from repro.newick import trees_from_string
from repro.observability.metrics import MetricsRegistry

NEWICK = "((A,B),(C,D));\n((A,C),(B,D));\n((A,B),(C,D));\n((A,D),(B,C));\n"

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.snapshot()["counters"]["x"] == 5

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("workers").set(2)
        reg.gauge("workers").set(8)
        assert reg.snapshot()["gauges"]["workers"] == 8

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = reg.snapshot()["histograms"]["lat"]
        assert s["count"] == 3
        assert s["sum"] == 6.0
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == 2.0
        assert sum(s["buckets"].values()) == 3
        assert all(isinstance(k, str) for k in s["buckets"])

    def test_histogram_quantiles_bounded_by_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.002, 0.004, 0.008, 0.5, 1.0):
            h.observe(v)
        s = h.summary()
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_histogram_single_value_quantiles_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.25)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["p99"] == 0.25

    def test_empty_histogram_summary_is_zeroed(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").summary()["count"] == 0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        b.counter("only_b").inc(1)
        a.merge(b.snapshot())
        snap = a.snapshot()["counters"]
        assert snap["n"] == 7
        assert snap["only_b"] == 1

    def test_histograms_combine(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(5.0)
        b.histogram("lat").observe(3.0)
        a.merge(b.snapshot())
        s = a.snapshot()["histograms"]["lat"]
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 5.0
        assert s["sum"] == 9.0
        assert sum(s["buckets"].values()) == 3

    def test_bucketless_legacy_summary_merges_moments(self):
        a = MetricsRegistry()
        a.histogram("lat").observe(1.0)
        a.merge({"histograms": {"lat": {"count": 2, "sum": 8.0,
                                        "min": 3.0, "max": 5.0}}})
        s = a.snapshot()["histograms"]["lat"]
        assert s["count"] == 3 and s["sum"] == 9.0
        assert s["min"] == 1.0 and s["max"] == 5.0

    def test_empty_histogram_does_not_poison_min_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat").observe(2.0)
        b.histogram("lat")  # created but never observed
        a.merge(b.snapshot())
        s = a.snapshot()["histograms"]["lat"]
        assert s["count"] == 1 and s["sum"] == 2.0
        assert s["min"] == 2.0 and s["max"] == 2.0 and s["mean"] == 2.0

    def test_merge_round_trips_through_snapshot(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.5)
        a.histogram("h").observe(4.0)
        b = MetricsRegistry()
        b.merge(a.snapshot())
        assert b.snapshot() == a.snapshot()


class TestInstrumentation:
    def test_parser_counts_trees(self, observed):
        trees_from_string(NEWICK)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["newick.trees_parsed"] == 4

    def test_bfh_counts_hashed_and_hits(self, observed):
        trees = trees_from_string(NEWICK)
        obs.clear_metrics()
        bfh = build_bfh(trees)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["bfh.bipartitions_hashed"] == 4  # one split/tree
        bfhrf_average_rf(trees, bfh=bfh)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["bfh.hash_hits"] + \
            snap["counters"].get("bfh.hash_misses", 0) == 4

    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        trees = trees_from_string(NEWICK)
        bfhrf_average_rf(trees)
        assert obs.metrics_snapshot() == {"counters": {}, "gauges": {},
                                          "histograms": {}}


@needs_fork
class TestForkWorkerMerge:
    def test_parallel_query_metrics_come_home(self, observed):
        trees = trees_from_string(NEWICK)
        obs.clear_metrics()
        values = bfhrf_average_rf(trees, n_workers=2, chunk_size=1)
        assert len(values) == 4
        snap = obs.metrics_snapshot()
        # One chunk task per tree, executed in the workers, merged back.
        assert snap["counters"]["parallel.tasks"] == 4
        assert snap["histograms"]["parallel.task_seconds"]["count"] == 4
        assert snap["gauges"]["parallel.workers"] == 2

    def test_parent_counts_not_doubled(self, observed):
        trees = trees_from_string(NEWICK)  # counts 4 parses in the parent
        before = obs.metrics_snapshot()["counters"]["newick.trees_parsed"]
        bfhrf_average_rf(trees, n_workers=2)
        after = obs.metrics_snapshot()["counters"]["newick.trees_parsed"]
        # Workers inherit the parent registry via fork; worker_init must
        # reset it or the 4 parses would ride back with every snapshot.
        assert after == before

    def test_dsmp_merges_worker_metrics(self, observed):
        trees = trees_from_string(NEWICK)
        obs.clear_metrics()
        dsmp_average_rf(trees, trees, n_workers=2, chunk_size=2)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["parallel.tasks"] >= 2
        assert snap["counters"]["ds.set_comparisons"] == 16  # 4 queries × r=4

    def test_serial_parallel_same_counters(self, observed):
        trees = trees_from_string(NEWICK)
        obs.clear_metrics()
        bfhrf_average_rf(trees)
        serial = obs.metrics_snapshot()["counters"]
        obs.clear_metrics()
        bfhrf_average_rf(trees, n_workers=2)
        parallel = obs.metrics_snapshot()["counters"]
        for name in ("bfh.bipartitions_hashed", "bfh.hash_hits"):
            assert parallel.get(name, 0) == serial.get(name, 0), name
