"""Spans: nesting, attributes, memory peaks, and the disabled fast path."""

import threading

import pytest

import repro.observability as obs
from repro.observability.spans import _NULL_SPAN, trace


class TestNesting:
    def test_child_recorded_under_parent(self, observed):
        with trace("outer") as outer:
            with trace("inner"):
                pass
        roots = obs.finished_spans()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert outer.wall_s is not None and outer.wall_s >= 0

    def test_three_levels(self, observed):
        with trace("a"):
            with trace("b"):
                with trace("c"):
                    pass
        (a,) = obs.finished_spans()
        assert a.children[0].name == "b"
        assert a.children[0].children[0].name == "c"

    def test_siblings_in_order(self, observed):
        with trace("parent"):
            with trace("first"):
                pass
            with trace("second"):
                pass
        (parent,) = obs.finished_spans()
        assert [c.name for c in parent.children] == ["first", "second"]

    def test_sequential_roots(self, observed):
        with trace("one"):
            pass
        with trace("two"):
            pass
        assert [s.name for s in obs.finished_spans()] == ["one", "two"]

    def test_parent_wall_covers_children(self, observed):
        with trace("outer"):
            with trace("inner"):
                sum(range(10_000))
        (outer,) = obs.finished_spans()
        assert outer.wall_s >= outer.children[0].wall_s


class TestAttributes:
    def test_kwargs_at_open(self, observed):
        with trace("parse", source="x.nwk", format="newick"):
            pass
        (span,) = obs.finished_spans()
        assert span.attrs == {"source": "x.nwk", "format": "newick"}

    def test_set_mid_span(self, observed):
        with trace("bfh.build", workers=1) as span:
            span.set(r=42, unique=7)
        (done,) = obs.finished_spans()
        assert done.attrs == {"workers": 1, "r": 42, "unique": 7}

    def test_exception_recorded_and_propagated(self, observed):
        with pytest.raises(ValueError):
            with trace("doomed"):
                raise ValueError("boom")
        (span,) = obs.finished_spans()
        assert span.attrs["error"] == "ValueError"
        assert span.wall_s is not None

    def test_to_dict_shape(self, observed):
        with trace("outer", k="v"):
            with trace("inner"):
                pass
        doc = obs.finished_spans()[0].to_dict()
        assert doc["name"] == "outer"
        assert doc["attrs"] == {"k": "v"}
        assert doc["children"][0]["name"] == "inner"
        assert "wall_s" in doc and "peak_mb" in doc


class TestMemoryPeaks:
    def test_peak_recorded(self, observed):
        with trace("alloc"):
            blob = bytearray(8 * 1024 * 1024)
        del blob
        (span,) = obs.finished_spans()
        assert span.peak_mb == pytest.approx(8.0, abs=1.5)

    def test_parent_peak_at_least_child_peak(self, observed):
        with trace("outer"):
            with trace("child"):
                blob = bytearray(8 * 1024 * 1024)
            del blob
        (outer,) = obs.finished_spans()
        child = outer.children[0]
        assert outer.peak_mb >= child.peak_mb > 0

    def test_no_memory_mode_leaves_peak_none(self, observed_no_memory):
        with trace("timed"):
            pass
        (span,) = obs.finished_spans()
        assert span.peak_mb is None
        assert span.wall_s is not None


class TestDisabledFastPath:
    def test_trace_returns_shared_singleton(self):
        assert not obs.enabled()
        assert trace("anything") is _NULL_SPAN
        assert trace("other", with_attrs=1) is _NULL_SPAN

    def test_nothing_collected(self):
        with trace("invisible") as span:
            span.set(ignored=True)
        assert obs.finished_spans() == []

    def test_null_span_set_chains(self):
        span = trace("x")
        assert span.set(a=1) is span

    def test_no_span_objects_allocated(self):
        spans_before = len(obs.finished_spans())
        for _ in range(1000):
            with trace("hot"):
                pass
        assert len(obs.finished_spans()) == spans_before


class TestThreadSafety:
    def test_threads_keep_separate_stacks(self, observed_no_memory):
        errors = []

        def work(tag):
            try:
                for _ in range(50):
                    with trace(f"root-{tag}"):
                        with trace(f"leaf-{tag}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = obs.finished_spans()
        assert len(roots) == 200
        for root in roots:
            tag = root.name.split("-")[1]
            assert [c.name for c in root.children] == [f"leaf-{tag}"]

    def test_active_span(self, observed_no_memory):
        assert obs.active_span() is None
        with trace("outer") as outer:
            assert obs.active_span() is outer
            with trace("inner") as inner:
                assert obs.active_span() is inner
            assert obs.active_span() is outer
        assert obs.active_span() is None
