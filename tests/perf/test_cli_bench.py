"""The ``bfhrf bench`` subcommand end to end (and ``--cprofile``)."""

import json

import pytest

from repro.cli import main
from repro.perf.ledger import LedgerEntry, append_entry, read_ledger


class TestBenchRun:
    def test_run_appends_schema_valid_entry(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        rc = main(["bench", "run", "table1", "--repeat", "2", "--warmup", "0",
                   "--scale", "0.25", "--ledger", str(ledger)])
        assert rc == 0
        (entry,) = read_ledger(ledger)
        assert entry.benchmark == "table1"
        assert entry.repeat == 2
        hists = entry.metrics["histograms"]
        for name in ("parallel.fanout_seconds", "vectorized.probe_seconds",
                     "store.shard_build_seconds"):
            assert name in hists

    def test_run_without_names_errors(self, tmp_path, capsys):
        assert main(["bench", "run", "--ledger",
                     str(tmp_path / "l.jsonl")]) == 2
        assert "NAMEs or --smoke" in capsys.readouterr().err

    def test_unknown_benchmark_is_repro_error(self, tmp_path, capsys):
        rc = main(["bench", "run", "nope", "--ledger",
                   str(tmp_path / "l.jsonl")])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestBenchList:
    def test_lists_builtins_with_tiers(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "[smoke]" in out and "tol=25%" in out


class TestBenchCompare:
    @pytest.fixture()
    def ledgers(self, tmp_path):
        base = tmp_path / "base.jsonl"
        cand = tmp_path / "cand.jsonl"
        for seconds in (1.00, 1.01, 0.99, 1.02):
            append_entry(base, LedgerEntry(benchmark="synthetic",
                                           seconds=seconds))
        return base, cand

    def test_perturbed_candidate_fails_naming_metric(self, ledgers, capsys):
        base, cand = ledgers
        append_entry(cand, LedgerEntry(benchmark="synthetic", seconds=1.30))
        rc = main(["bench", "compare", str(base), str(cand)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSED" in out
        assert "synthetic/seconds" in out

    def test_clean_candidate_passes(self, ledgers, capsys):
        base, cand = ledgers
        append_entry(cand, LedgerEntry(benchmark="synthetic", seconds=1.01))
        assert main(["bench", "compare", str(base), str(cand)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_json_flag(self, ledgers, capsys):
        base, cand = ledgers
        append_entry(cand, LedgerEntry(benchmark="synthetic", seconds=1.30))
        rc = main(["bench", "compare", str(base), str(cand), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1 and doc["ok"] is False

    def test_tolerance_override(self, ledgers, capsys):
        base, cand = ledgers
        append_entry(cand, LedgerEntry(benchmark="synthetic", seconds=1.30))
        assert main(["bench", "compare", str(base), str(cand),
                     "--tolerance", "0.5"]) == 0


class TestCProfileFlag:
    def test_cprofile_lands_in_run_report(self, tmp_path, capsys):
        trees = tmp_path / "trees.nwk"
        trees.write_text("((A,B),(C,D));\n((A,C),(B,D));\n")
        out = tmp_path / "report.json"
        rc = main(["--cprofile", "--metrics-out", str(out), "avg-rf",
                   str(trees)])
        assert rc == 0
        doc = json.loads(out.read_text())
        root = doc["spans"][0]
        assert root["name"] == "cli.avg-rf"
        profile = root["attrs"]["profile"]
        assert any("cumulative" in line for line in profile)

    def test_cprofile_alone_prints_to_stderr(self, tmp_path, capsys):
        trees = tmp_path / "trees.nwk"
        trees.write_text("((A,B),(C,D));\n((A,C),(B,D));\n")
        assert main(["--cprofile", "avg-rf", str(trees)]) == 0
        assert "cumulative" in capsys.readouterr().err
