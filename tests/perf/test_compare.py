"""The regression gate: median + MAD thresholds, rendering, exit paths."""

import json

import pytest

from repro.perf.compare import compare_entries, compare_ledgers
from repro.perf.ledger import LedgerEntry, append_entry
from repro.util.errors import PerfError


def _entry(seconds, *, benchmark="synthetic", rss=100.0, tolerance=0.25,
           metrics=None):
    return LedgerEntry(benchmark=benchmark, seconds=seconds,
                       peak_rss_mb=rss, tolerance=tolerance,
                       metrics=metrics or {})


def _ledgers(tmp_path, baseline_entries, candidate_entries):
    base = tmp_path / "base.jsonl"
    cand = tmp_path / "cand.jsonl"
    for entry in baseline_entries:
        append_entry(base, entry)
    for entry in candidate_entries:
        append_entry(cand, entry)
    return base, cand


BASELINE = [1.00, 1.01, 0.99, 1.02]


class TestCompareEntries:
    def test_thirty_percent_slowdown_regresses(self):
        baseline = [_entry(s) for s in BASELINE]
        results = compare_entries(baseline, _entry(1.30))
        regressed = [c for c in results if c.regressed]
        assert [c.metric for c in regressed] == ["seconds"]

    def test_within_tolerance_passes(self):
        baseline = [_entry(s) for s in BASELINE]
        results = compare_entries(baseline, _entry(1.10))
        assert not any(c.regressed for c in results)

    def test_improvement_never_regresses(self):
        baseline = [_entry(s) for s in BASELINE]
        results = compare_entries(baseline, _entry(0.5))
        assert not any(c.regressed for c in results)

    def test_noisy_baseline_widens_threshold(self):
        # Scatter so wild that MAD dominates: ±50% swings in history mean
        # a 30% "slowdown" is indistinguishable from noise.
        baseline = [_entry(s) for s in (0.5, 1.5, 0.6, 1.4, 1.0)]
        results = compare_entries(baseline, _entry(1.30))
        assert not any(c.regressed for c in results)

    def test_tolerance_override(self):
        baseline = [_entry(s) for s in BASELINE]
        results = compare_entries(baseline, _entry(1.10), tolerance=0.05)
        assert any(c.regressed and c.metric == "seconds" for c in results)

    def test_tiny_absolute_deltas_ignored(self):
        # 2ms vs 1ms is 2x, but under the absolute floor — jitter, not
        # evidence.
        baseline = [_entry(s) for s in (0.001, 0.001, 0.001)]
        results = compare_entries(baseline, _entry(0.002))
        assert not any(c.regressed for c in results)

    def test_histogram_totals_compared(self):
        hist = {"histograms": {"store.query_seconds": {"sum": 1.0}}}
        slow = {"histograms": {"store.query_seconds": {"sum": 2.0}}}
        baseline = [_entry(1.0, metrics=hist) for _ in range(3)]
        results = compare_entries(baseline, _entry(1.0, metrics=slow))
        regressed = {c.metric for c in results if c.regressed}
        assert regressed == {"hist:store.query_seconds:total"}

    def test_empty_baseline_returns_nothing(self):
        assert compare_entries([], _entry(1.0)) == []


class TestCompareLedgers:
    def test_regression_report_names_metric(self, tmp_path):
        base, cand = _ledgers(tmp_path, [_entry(s) for s in BASELINE],
                              [_entry(1.30)])
        report = compare_ledgers(base, cand)
        assert not report.ok
        assert report.regressions[0].metric == "seconds"
        text = report.render()
        assert "REGRESSED" in text and "synthetic/seconds" in text

    def test_latest_candidate_entry_wins(self, tmp_path):
        base, cand = _ledgers(tmp_path, [_entry(s) for s in BASELINE],
                              [_entry(9.0), _entry(1.0)])
        assert compare_ledgers(base, cand).ok

    def test_missing_baseline_listed_not_failed(self, tmp_path):
        base, cand = _ledgers(tmp_path, [_entry(1.0)],
                              [_entry(1.0), _entry(1.0, benchmark="brand_new")])
        report = compare_ledgers(base, cand)
        assert report.ok
        assert report.missing_baselines == ["brand_new"]
        assert "brand_new" in report.render()

    def test_json_output_machine_readable(self, tmp_path):
        base, cand = _ledgers(tmp_path, [_entry(s) for s in BASELINE],
                              [_entry(1.30)])
        doc = json.loads(compare_ledgers(base, cand).to_json())
        assert doc["ok"] is False
        bad = [c for c in doc["comparisons"] if c["regressed"]]
        assert bad[0]["metric"] == "seconds"
        assert bad[0]["ratio"] == pytest.approx(1.30 / 1.005, rel=1e-6)

    def test_empty_candidate_raises(self, tmp_path):
        base, cand = _ledgers(tmp_path, [_entry(1.0)], [])
        cand.write_text("")
        with pytest.raises(PerfError, match="empty"):
            compare_ledgers(base, cand)
