"""Ledger round-trips, schema gating, and the flat compare-metric view."""

import json

import pytest

from repro.perf.ledger import (
    SCHEMA_VERSION,
    LedgerEntry,
    append_entry,
    git_sha,
    read_ledger,
)
from repro.util.errors import PerfError


def _entry(**overrides) -> LedgerEntry:
    defaults = dict(
        benchmark="table1", seconds=0.125, all_seconds=[0.125, 0.25],
        repeat=2, warmup=1, scale=0.5, peak_rss_mb=12.5, tolerance=0.25,
        created_unix=1754600000.0, git_sha="abc123",
        metrics={"counters": {"parallel.tasks": 4},
                 "histograms": {"store.query_seconds": {
                     "count": 2, "sum": 0.5, "min": 0.125, "max": 0.375,
                     "mean": 0.25, "p50": 0.25, "p95": 0.37, "p99": 0.37,
                     "buckets": {"33": 2}}}},
        extra={"trees": 24})
    defaults.update(overrides)
    return LedgerEntry(**defaults)


class TestLedgerEntry:
    def test_dict_round_trip_equality(self):
        entry = _entry()
        assert LedgerEntry.from_dict(entry.to_dict()) == entry

    def test_json_line_round_trip(self):
        entry = _entry()
        line = json.dumps(entry.to_dict())
        assert LedgerEntry.from_dict(json.loads(line)) == entry

    def test_schema_version_stamped(self):
        assert _entry().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_newer_schema_rejected(self):
        data = _entry().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(PerfError, match="newer"):
            LedgerEntry.from_dict(data)

    def test_missing_schema_rejected(self):
        data = _entry().to_dict()
        del data["schema_version"]
        with pytest.raises(PerfError, match="schema_version"):
            LedgerEntry.from_dict(data)

    def test_compare_metrics_flattens_time_histograms(self):
        flat = _entry().compare_metrics()
        assert flat["seconds"] == 0.125
        assert flat["peak_rss_mb"] == 12.5
        assert flat["hist:store.query_seconds:total"] == 0.5
        # Non-time histograms (payload bytes etc.) stay out of the gate.
        entry = _entry()
        entry.metrics["histograms"]["parallel.payload_bytes"] = {"sum": 9e9}
        assert "hist:parallel.payload_bytes:total" not in entry.compare_metrics()


class TestLedgerFile:
    def test_append_and_read_preserve_order(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = _entry(seconds=0.1)
        second = _entry(seconds=0.2, benchmark="store_warm")
        append_entry(path, first)
        append_entry(path, second)
        entries = read_ledger(path)
        assert entries == [first, second]

    def test_append_creates_parents(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "ledger.jsonl"
        append_entry(path, _entry())
        assert len(read_ledger(path)) == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry(path, _entry())
        with open(path, "a") as fh:
            fh.write("\n\n")
        append_entry(path, _entry())
        assert len(read_ledger(path)) == 2

    def test_corrupt_line_names_line_number(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry(path, _entry())
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(PerfError, match=":2"):
            read_ledger(path)

    def test_missing_ledger_raises(self, tmp_path):
        with pytest.raises(PerfError, match="not found"):
            read_ledger(tmp_path / "absent.jsonl")


class TestGitSha:
    def test_inside_repo_returns_hex(self):
        sha = git_sha()
        if sha is not None:  # repo checkouts only
            assert len(sha) == 40
            int(sha, 16)

    def test_outside_repo_returns_none(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None
