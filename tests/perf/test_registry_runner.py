"""Registry lookups and the bench runner's ledger entries."""

import pytest

from repro import observability as obs
from repro.perf.registry import (
    Benchmark,
    benchmark_names,
    get_benchmark,
    register_benchmark,
)
from repro.perf.runner import run_benchmark
from repro.util.errors import PerfError


class TestRegistry:
    def test_builtins_registered(self):
        names = benchmark_names()
        for expected in ("table1", "vectorized_probe", "store_warm",
                         "mapreduce"):
            assert expected in names

    def test_smoke_subset(self):
        smoke = benchmark_names(smoke_only=True)
        assert "table1" in smoke
        assert "mapreduce" not in smoke

    def test_unknown_benchmark_raises(self):
        with pytest.raises(PerfError, match="unknown benchmark"):
            get_benchmark("definitely_not_registered")

    def test_register_and_replace(self):
        try:
            first = register_benchmark("tmp_test_bench", lambda s: {},
                                       description="v1")
            assert isinstance(first, Benchmark)
            second = register_benchmark("tmp_test_bench", lambda s: {},
                                        description="v2")
            assert get_benchmark("tmp_test_bench").description == "v2"
            assert second.tolerance == 0.25
        finally:
            from repro.perf import registry
            registry._REGISTRY.pop("tmp_test_bench", None)

    def test_bad_registrations_rejected(self):
        with pytest.raises(PerfError):
            register_benchmark("has space", lambda s: {})
        with pytest.raises(PerfError):
            register_benchmark("neg_tol", lambda s: {}, tolerance=-1.0)


class TestRunner:
    @pytest.fixture()
    def counting_bench(self):
        calls = []

        def fn(scale):
            calls.append(scale)
            obs.histogram("fake.work_seconds").observe(0.5)
            return {"calls_so_far": len(calls)}

        register_benchmark("tmp_counting", fn, description="test only")
        try:
            yield calls
        finally:
            from repro.perf import registry
            registry._REGISTRY.pop("tmp_counting", None)

    def test_warmup_plus_repeat_calls(self, counting_bench):
        entry = run_benchmark("tmp_counting", repeat=3, warmup=2, scale=0.5)
        assert len(counting_bench) == 5
        assert counting_bench == [0.5] * 5
        assert entry.repeat == 3 and entry.warmup == 2
        assert len(entry.all_seconds) == 3
        assert entry.seconds == min(entry.all_seconds)

    def test_warmup_metrics_discarded(self, counting_bench):
        entry = run_benchmark("tmp_counting", repeat=2, warmup=3)
        # Only the timed repetitions appear in the snapshot.
        assert entry.metrics["histograms"]["fake.work_seconds"]["count"] == 2

    def test_entry_is_schema_valid(self, counting_bench):
        from repro.perf.ledger import LedgerEntry

        entry = run_benchmark("tmp_counting", repeat=1, warmup=0)
        assert LedgerEntry.from_dict(entry.to_dict()) == entry
        assert entry.env["python"]
        assert entry.extra == {"calls_so_far": 1}

    def test_observability_state_restored(self, counting_bench):
        assert not obs.enabled()
        run_benchmark("tmp_counting", repeat=1, warmup=0)
        assert not obs.enabled()
        snapshot = obs.metrics_snapshot()
        assert not any(snapshot.get(kind) for kind in
                       ("counters", "gauges", "histograms"))

    def test_caller_observability_survives(self, counting_bench):
        obs.reset()
        obs.enable()
        try:
            obs.counter("caller.work").inc(7)
            with obs.trace("caller.root"):
                pass
            run_benchmark("tmp_counting", repeat=1, warmup=0)
            assert obs.enabled()
            snapshot = obs.metrics_snapshot()
            assert snapshot["counters"]["caller.work"] == 7
            assert [s.name for s in obs.finished_spans()] == ["caller.root"]
        finally:
            obs.disable()
            obs.reset()

    def test_invalid_parameters(self, counting_bench):
        with pytest.raises(PerfError):
            run_benchmark("tmp_counting", repeat=0)
        with pytest.raises(PerfError):
            run_benchmark("tmp_counting", warmup=-1)
        with pytest.raises(PerfError):
            run_benchmark("tmp_counting", scale=0.0)


class TestBuiltinWorkload:
    def test_table1_produces_required_histograms(self):
        entry = run_benchmark("table1", repeat=1, warmup=0, scale=0.25)
        hists = entry.metrics["histograms"]
        for name in ("parallel.fanout_seconds", "vectorized.probe_seconds",
                     "store.shard_build_seconds", "store.query_seconds",
                     "store.shard_write_seconds"):
            assert name in hists, f"missing {name}"
        assert entry.extra["trees"] >= 8
        assert entry.peak_rss_mb >= 0.0
