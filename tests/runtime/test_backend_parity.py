"""Backend-parity matrix: every executor must produce bitwise-identical
results for the core parallel paths (bfhrf, dsmp, store shard build),
and the merged worker metrics must account for every task.

This is the test-suite twin of the ``backend-parity`` selfcheck oracle.
"""

import pytest

from repro import observability as obs
from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.core.parallel import dsmp_average_rf
from repro.observability.metrics import metrics_snapshot
from repro.runtime import BACKENDS, set_default_executor
from repro.store.shards import parallel_build_tables

ALL_BACKENDS = ["serial", "thread", "fork", "spawn"]


def _skip_unless_available(backend: str) -> None:
    if not BACKENDS[backend].available():
        pytest.skip(f"{backend} unavailable here")


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_executor(None)
    yield
    set_default_executor(None)


@pytest.fixture(scope="module")
def trees():
    from tests.conftest import make_collection

    return make_collection(n_taxa=16, n_trees=12, seed=7)


class TestBfhrfParity:
    @pytest.fixture(scope="class")
    def serial_values(self, trees):
        return bfhrf_average_rf(trees, trees, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = bfhrf_average_rf(trees, trees, n_workers=2,
                                  executor=backend)
        assert values == serial_values

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_build_bfh_identical(self, backend, trees):
        _skip_unless_available(backend)
        serial = build_bfh(trees, n_workers=1)
        parallel = build_bfh(trees, n_workers=2, executor=backend)
        assert parallel.counts == serial.counts
        assert parallel.n_trees == serial.n_trees
        assert parallel.total == serial.total


class TestDsmpParity:
    @pytest.fixture(scope="class")
    def serial_values(self, trees):
        return dsmp_average_rf(trees, trees, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = dsmp_average_rf(trees, trees, n_workers=2,
                                 executor=backend)
        assert values == serial_values


class TestShardBuildParity:
    @pytest.fixture(scope="class")
    def serial_tables(self, trees):
        return parallel_build_tables(trees, include_trivial=False,
                                     weighted=False, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_tables):
        _skip_unless_available(backend)
        tables = parallel_build_tables(trees, include_trivial=False,
                                       weighted=False, n_workers=2,
                                       executor=backend)
        assert tables == serial_tables


class TestMergedWorkerMetrics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_task_accounted_for(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            bfhrf_average_rf(trees, trees, n_workers=2, executor=backend)
            snapshot = metrics_snapshot()
            tasks = snapshot["counters"]["parallel.tasks"]
            # Serial runs everything as one chunk; the others split work.
            assert tasks >= (1 if backend == "serial" else 2)
            assert snapshot["histograms"]["parallel.task_seconds"]["count"] == tasks
            expected_workers = 1 if backend == "serial" else 2
            assert snapshot["gauges"]["parallel.workers"] == expected_workers
        finally:
            obs.disable()
            obs.reset()
