"""Backend-parity matrix: every executor must produce bitwise-identical
results for the core parallel paths (bfhrf, shm, dsmp, store shard
build), and the merged worker metrics must account for every task.

The matrix covers layouts as well as backends: dict (bfhrf), vectorized
(in-process arrays), and shared (zero-copy segments) must agree with the
serial dict path exactly on every executor.

This is the test-suite twin of the ``backend-parity`` selfcheck oracle.
"""

import pytest

from repro import observability as obs
from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.core.parallel import dsmp_average_rf
from repro.core.shmrf import shm_average_rf
from repro.core.vectorized import vectorized_average_rf
from repro.observability.metrics import metrics_snapshot
from repro.runtime import BACKENDS, set_default_executor
from repro.store.shards import parallel_build_tables

ALL_BACKENDS = ["serial", "thread", "fork", "spawn"]


def _skip_unless_available(backend: str) -> None:
    if not BACKENDS[backend].available():
        pytest.skip(f"{backend} unavailable here")


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_executor(None)
    yield
    set_default_executor(None)


@pytest.fixture(scope="module")
def trees():
    from tests.conftest import make_collection

    return make_collection(n_taxa=16, n_trees=12, seed=7)


class TestBfhrfParity:
    @pytest.fixture(scope="class")
    def serial_values(self, trees):
        return bfhrf_average_rf(trees, trees, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = bfhrf_average_rf(trees, trees, n_workers=2,
                                  executor=backend)
        assert values == serial_values

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_build_bfh_identical(self, backend, trees):
        _skip_unless_available(backend)
        serial = build_bfh(trees, n_workers=1)
        parallel = build_bfh(trees, n_workers=2, executor=backend)
        assert parallel.counts == serial.counts
        assert parallel.n_trees == serial.n_trees
        assert parallel.total == serial.total


class TestShmParity:
    """The zero-copy shared layout vs the serial dict path, per backend."""

    @pytest.fixture(scope="class")
    def serial_values(self, trees):
        return bfhrf_average_rf(trees, trees, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = shm_average_rf(trees, trees, n_workers=2, executor=backend)
        assert values == serial_values

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_vectorized_layout_agrees(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = vectorized_average_rf(trees, trees, n_workers=2,
                                       executor=backend)
        assert values == serial_values

    def test_serial_worker_count_uses_no_segments(self, trees, serial_values):
        assert shm_average_rf(trees, trees, n_workers=1) == serial_values

    @pytest.mark.parametrize("backend", ["fork", "spawn"])
    def test_merged_worker_metrics(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            shm_average_rf(trees, trees, n_workers=2, executor=backend)
            snapshot = metrics_snapshot()
            tasks = snapshot["counters"]["parallel.tasks"]
            assert tasks >= 2
            assert snapshot["histograms"]["parallel.task_seconds"]["count"] \
                == tasks
            # The payload probe must record the segment size, not a pickle.
            assert snapshot["gauges"]["parallel.shm_payload_bytes"] > 0
            assert snapshot["gauges"]["shm.segment_bytes"] > 0
            assert snapshot["counters"]["shm.segments_created"] >= 1
        finally:
            obs.disable()
            obs.reset()


class TestDsmpParity:
    @pytest.fixture(scope="class")
    def serial_values(self, trees):
        return dsmp_average_rf(trees, trees, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_values):
        _skip_unless_available(backend)
        values = dsmp_average_rf(trees, trees, n_workers=2,
                                 executor=backend)
        assert values == serial_values


class TestShardBuildParity:
    @pytest.fixture(scope="class")
    def serial_tables(self, trees):
        return parallel_build_tables(trees, include_trivial=False,
                                     weighted=False, n_workers=1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bitwise_identical(self, backend, trees, serial_tables):
        _skip_unless_available(backend)
        tables = parallel_build_tables(trees, include_trivial=False,
                                       weighted=False, n_workers=2,
                                       executor=backend)
        assert tables == serial_tables


class TestMergedWorkerMetrics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_task_accounted_for(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            bfhrf_average_rf(trees, trees, n_workers=2, executor=backend)
            snapshot = metrics_snapshot()
            tasks = snapshot["counters"]["parallel.tasks"]
            # Serial runs everything as one chunk; the others split work.
            assert tasks >= (1 if backend == "serial" else 2)
            assert snapshot["histograms"]["parallel.task_seconds"]["count"] == tasks
            expected_workers = 1 if backend == "serial" else 2
            assert snapshot["gauges"]["parallel.workers"] == expected_workers
        finally:
            obs.disable()
            obs.reset()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fanout_latency_and_payload_recorded(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            bfhrf_average_rf(trees, trees, n_workers=2, executor=backend)
            snapshot = metrics_snapshot()
            fanout = snapshot["histograms"]["parallel.fanout_seconds"]
            assert fanout["count"] >= 1
            assert fanout["max"] >= 0.0
            if backend in ("fork", "spawn"):
                payload = snapshot["histograms"]["parallel.payload_bytes"]
                assert payload["count"] >= 1
                assert payload["min"] > 0
        finally:
            obs.disable()
            obs.reset()


def _collect_span_names(spans):
    names = []
    for span in spans:
        names.append(span.name)
        names.extend(_collect_span_names(span.children))
    return names


class TestWorkerSpanParity:
    """Worker-side spans must survive every backend, including spawn.

    ``_count_range`` opens a ``store.count`` span inside the worker; the
    process executors ship finished span subtrees home in the worker
    snapshot and graft them under the dispatching span, so the report
    shows the same tree shape regardless of backend.
    """

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_worker_spans_present(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            with obs.trace("parity.dispatch"):
                parallel_build_tables(trees, include_trivial=False,
                                      weighted=False, n_workers=2,
                                      executor=backend)
            roots = obs.finished_spans()
            # Thread-pool workers have their own (empty) span stacks, so
            # their spans surface as extra roots; every other backend
            # nests them under the dispatching span.
            assert "parity.dispatch" in [r.name for r in roots]
            names = _collect_span_names(roots)
            assert "store.count" in names
        finally:
            obs.disable()
            obs.reset()

    @pytest.mark.parametrize("backend", ["serial", "fork", "spawn"])
    def test_grafted_spans_nest_under_dispatching_span(self, backend, trees):
        _skip_unless_available(backend)
        obs.reset()
        obs.enable()
        try:
            with obs.trace("parity.dispatch"):
                parallel_build_tables(trees, include_trivial=False,
                                      weighted=False, n_workers=2,
                                      executor=backend)
            (root,) = obs.finished_spans()
            counts = [c for c in root.children if c.name == "store.count"]
            # One span per chunk: serial runs a single chunk inline, the
            # process backends split across two workers and graft home.
            assert len(counts) >= (1 if backend == "serial" else 2)
            for span in counts:
                assert span.wall_s is not None and span.wall_s >= 0.0
        finally:
            obs.disable()
            obs.reset()
