"""Unit tests for the executor abstraction (repro.runtime.executor)."""

import os

import pytest

from repro import observability as obs
from repro.observability.metrics import metrics_snapshot
from repro.runtime import (
    BACKENDS,
    EXECUTOR_ENV,
    available_backends,
    default_executor_name,
    fork_available,
    get_executor,
    get_payload,
    set_default_executor,
)
from repro.runtime.executor import SerialExecutor
from repro.util.errors import ExecutorError

ALL_BACKENDS = ["serial", "thread", "fork", "spawn"]


def _available(name: str) -> bool:
    return BACKENDS[name].available()


def _square_range(bounds):
    base = get_payload()
    return [base + i * i for i in range(bounds[0], bounds[1])]


def _payload_echo(bounds):
    return get_payload()


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_executor(None)
    yield
    set_default_executor(None)


class TestSubmitRanges:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_values_in_range_order(self, backend):
        if not _available(backend):
            pytest.skip(f"{backend} unavailable here")
        blocks = BACKENDS[backend].submit_ranges(
            _square_range, 10, 100, n_workers=3, chunk_size=3)
        assert [v for b in blocks for v in b] == [100 + i * i for i in range(10)]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_items(self, backend):
        if not _available(backend):
            pytest.skip(f"{backend} unavailable here")
        assert BACKENDS[backend].submit_ranges(_square_range, 0, 0,
                                               n_workers=2) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_payload_reaches_workers(self, backend):
        if not _available(backend):
            pytest.skip(f"{backend} unavailable here")
        shared = {"answer": 42}
        blocks = BACKENDS[backend].submit_ranges(
            _payload_echo, 4, shared, n_workers=2, chunk_size=2)
        assert blocks == [shared, shared]

    def test_serial_payload_restored_after_fanout(self):
        SerialExecutor().submit_ranges(_payload_echo, 2, "inner", n_workers=1)
        assert get_payload() is None

    def test_serial_payload_nesting(self):
        def outer(bounds):
            inner = SerialExecutor().submit_ranges(
                _payload_echo, 1, "inner", n_workers=1)
            return (get_payload(), inner)

        blocks = SerialExecutor().submit_ranges(outer, 1, "outer", n_workers=1)
        assert blocks == [("outer", ["inner"])]


class TestWorkerMetrics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_task_metrics_merged_into_parent(self, backend):
        if not _available(backend):
            pytest.skip(f"{backend} unavailable here")
        obs.reset()
        obs.enable()
        try:
            BACKENDS[backend].submit_ranges(_square_range, 8, 0,
                                            n_workers=2, chunk_size=2)
            snapshot = metrics_snapshot()
            assert snapshot["counters"]["parallel.tasks"] == 4
            # Serial always gauges one worker; real backends fan out.
            assert snapshot["gauges"]["parallel.workers"] == \
                (1 if backend == "serial" else 2)
            assert snapshot["histograms"]["parallel.task_seconds"]["count"] == 4
        finally:
            obs.disable()
            obs.reset()

    def test_spawn_records_parallel_fanout(self):
        """The acceptance criterion: spawn is genuinely parallel, with the
        observability fan-out recorded at workers > 1 (never a silent
        serial downgrade)."""
        obs.reset()
        obs.enable()
        try:
            BACKENDS["spawn"].submit_ranges(_square_range, 6, 1,
                                            n_workers=2, chunk_size=2)
            snapshot = metrics_snapshot()
            assert snapshot["gauges"]["parallel.workers"] > 1
            assert snapshot["counters"]["parallel.tasks"] == 3
        finally:
            obs.disable()
            obs.reset()


class TestResolution:
    def test_explicit_name_wins(self):
        assert get_executor("serial").name == "serial"
        assert get_executor("thread").name == "thread"

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_auto_detects_a_process_backend(self):
        name = get_executor("auto").name
        assert name == ("fork" if fork_available() else "spawn")

    def test_prefer_guides_auto_only(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert get_executor(None, prefer="thread").name == "thread"
        assert get_executor("serial", prefer="thread").name == "serial"

    def test_env_variable_consulted(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert default_executor_name() == "thread"
        assert get_executor(None).name == "thread"

    def test_default_outranks_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        set_default_executor("serial")
        assert get_executor(None).name == "serial"

    def test_explicit_outranks_default(self):
        set_default_executor("serial")
        assert get_executor("thread").name == "thread"

    def test_unknown_name_raises(self):
        with pytest.raises(ExecutorError):
            get_executor("mpi")
        with pytest.raises(ExecutorError):
            set_default_executor("mpi")

    def test_auto_clears_default(self):
        set_default_executor("thread")
        set_default_executor("auto")
        assert default_executor_name() == os.environ.get(EXECUTOR_ENV, "auto")

    def test_available_backends_always_has_portable_ones(self):
        names = available_backends()
        assert {"serial", "thread", "spawn"} <= set(names)


class _StreamingPart:
    """Each part pickles as a fixed-size blob; module-level so pickle can
    reference the class by import path."""

    nbytes = 0
    served = 0

    def __getstate__(self):
        _StreamingPart.served += 1
        return b"\0" * _StreamingPart.nbytes


class _SegmentBacked:
    """Payload stand-in that reports a segment and refuses to pickle."""

    def __init__(self, nbytes):
        self._nbytes = nbytes

    def segment_nbytes(self):
        return self._nbytes

    def __reduce__(self):
        raise AssertionError("segment-backed payload must never be pickled "
                             "by the probe")


class TestPayloadProbe:
    """Satellite regression: the payload gauge must not pickle the world."""

    def _probe(self, shared):
        from repro.runtime.executor import _record_payload_bytes

        obs.reset()
        obs.enable()
        try:
            _record_payload_bytes(shared)
            return metrics_snapshot()
        finally:
            obs.disable()
            obs.reset()

    def test_segment_backed_payload_is_never_pickled(self, monkeypatch):
        from repro.runtime import executor as ex

        def boom(shared, cap=0):
            raise AssertionError("pickle probe ran on the shm path")

        monkeypatch.setattr(ex, "_capped_pickle_size", boom)
        snapshot = self._probe((_SegmentBacked(4096), "chaff", None))
        assert snapshot["gauges"]["parallel.shm_payload_bytes"] == 4096.0
        assert snapshot["histograms"]["parallel.payload_bytes"]["max"] == 4096.0

    def test_multiple_segments_sum(self):
        snapshot = self._probe((_SegmentBacked(100), _SegmentBacked(28)))
        assert snapshot["gauges"]["parallel.shm_payload_bytes"] == 128.0

    def test_plain_payload_records_pickled_size(self):
        snapshot = self._probe(list(range(50)))
        size = snapshot["histograms"]["parallel.payload_bytes"]["max"]
        assert 0 < size < 1024
        assert "parallel.shm_payload_bytes" not in snapshot["gauges"]

    def test_oversized_payload_records_cap_as_floor(self):
        from repro.runtime.executor import PAYLOAD_PROBE_CAP

        huge = b"x" * (PAYLOAD_PROBE_CAP * 4)
        snapshot = self._probe(huge)
        assert snapshot["histograms"]["parallel.payload_bytes"]["max"] \
            == float(PAYLOAD_PROBE_CAP)

    def test_probe_cap_bounds_serialized_bytes(self):
        from repro.runtime.executor import PAYLOAD_PROBE_CAP, _capped_pickle_size

        _StreamingPart.nbytes = PAYLOAD_PROBE_CAP // 2
        _StreamingPart.served = 0
        payload = tuple(_StreamingPart() for _ in range(100))
        assert _capped_pickle_size(payload) == float(PAYLOAD_PROBE_CAP)
        # The probe stopped within a few parts of the cap instead of
        # serializing all 100 halves (~50 MB).
        assert _StreamingPart.served <= 4

    def test_unpicklable_payload_is_skipped(self):
        snapshot = self._probe(lambda: None)
        assert "parallel.payload_bytes" not in snapshot["histograms"]

    def test_disabled_observability_short_circuits(self, monkeypatch):
        from repro.runtime import executor as ex

        def boom(shared, cap=0):
            raise AssertionError("probe ran while observability was off")

        monkeypatch.setattr(ex, "_capped_pickle_size", boom)
        ex._record_payload_bytes(list(range(10)))  # must be a no-op


def _noop_range(bounds):
    return bounds


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
class TestForkSignalHygiene:
    def test_pool_teardown_does_not_ghost_signal_the_parent(self):
        """A fork fan-out from a process with an asyncio-style signal
        wakeup fd must not echo the workers' teardown SIGTERM back into
        the parent's pipe.

        Forked children share the parent's wakeup fd; pool teardown
        SIGTERMs them, and without the fork initializer detaching the
        fd, the children's inherited C handler writes into the shared
        pipe — the parent's event loop then reads a SIGTERM that was
        never sent to it (the `bfhrf serve` daemon shut itself down
        after its first --workers>1 batch this way).
        """
        import signal
        import socket as socketlib

        read_side, write_side = socketlib.socketpair()
        read_side.setblocking(False)
        write_side.setblocking(False)
        previous_fd = signal.set_wakeup_fd(write_side.fileno())
        previous_term = signal.signal(signal.SIGTERM, lambda *a: None)
        try:
            BACKENDS["fork"].submit_ranges(_noop_range, 8, None, n_workers=2)
            # Pool teardown has SIGTERMed the workers by now; the
            # parent's pipe must still be empty.
            with pytest.raises(BlockingIOError):
                read_side.recv(64)
        finally:
            signal.set_wakeup_fd(previous_fd)
            signal.signal(signal.SIGTERM, previous_term)
            read_side.close()
            write_side.close()
