"""Property test: histogram merge across fork workers is *exact*.

The worker-snapshot protocol promises that fanning observations out
over processes and merging the snapshots is indistinguishable — for
count, sum, min, and max — from observing everything in one process.
Values are dyadic rationals (k / 2^m) so float addition is associative
for them at these magnitudes and the comparison can demand equality,
not tolerance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import observability as obs
from repro.observability.metrics import histogram, metrics_snapshot
from repro.runtime import BACKENDS
from repro.runtime.executor import get_executor, get_payload

pytestmark = pytest.mark.skipif(not BACKENDS["fork"].available(),
                                reason="fork unavailable here")

_METRIC = "prop.fork_merge_seconds"

dyadic = st.builds(lambda k, m: k / (2 ** m),
                   st.integers(min_value=-(2 ** 20), max_value=2 ** 20),
                   st.integers(min_value=0, max_value=10))


def _observe_range(bounds):
    values = get_payload()
    h = histogram(_METRIC)
    for value in values[bounds[0]:bounds[1]]:
        h.observe(value)
    return bounds[1] - bounds[0]


@settings(max_examples=12, deadline=None)
@given(st.lists(dyadic, min_size=2, max_size=16))
def test_fork_merge_matches_serial_moments(values):
    obs.reset()
    obs.enable()
    try:
        counts = get_executor("fork").submit_ranges(
            _observe_range, len(values), values, n_workers=2, chunk_size=1)
        assert sum(counts) == len(values)
        merged = metrics_snapshot()["histograms"][_METRIC]
    finally:
        obs.disable()
        obs.reset()

    assert merged["count"] == len(values)
    assert merged["sum"] == sum(values)
    assert merged["min"] == min(values)
    assert merged["max"] == max(values)
    # Bucket counts fold exactly too: every observation lands somewhere.
    assert sum(merged["buckets"].values()) == len(values)
