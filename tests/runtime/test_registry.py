"""Unit tests for the method registry (repro.runtime.registry)."""

import pytest

from repro.runtime import (
    MethodSpec,
    get_method,
    method_names,
    methods,
    methods_docstring,
    methods_markdown_table,
)
from repro.util.errors import CollectionError

BUILTINS = ("bfhrf", "ds", "dsmp", "hashrf", "vectorized", "mrsrf")


class TestBuiltins:
    def test_all_builtins_registered(self):
        assert set(BUILTINS) <= set(method_names())

    def test_specs_are_consistent(self):
        for spec in methods():
            assert get_method(spec.name) is spec
            assert spec.summary
            assert spec.memory_class in {"hash", "matrix", "stream"}

    def test_capability_flags_match_reality(self):
        assert get_method("bfhrf").supports_disparate
        assert get_method("bfhrf").supports_transform
        assert not get_method("hashrf").supports_disparate
        assert not get_method("hashrf").supports_transform
        assert not get_method("mrsrf").supports_disparate
        assert not get_method("ds").supports_workers

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_method("quantum")


class TestEnsureSupported:
    def test_ok_combinations_pass(self):
        get_method("bfhrf").ensure_supported(disparate=True, transform=True)
        get_method("hashrf").ensure_supported()

    def test_violations_raise_uniform_collection_error(self):
        for name in ("hashrf", "mrsrf"):
            with pytest.raises(CollectionError, match="does not support"):
                get_method(name).ensure_supported(disparate=True)
            with pytest.raises(CollectionError, match="does not support"):
                get_method(name).ensure_supported(transform=True)

    def test_message_suggests_capable_alternatives(self):
        with pytest.raises(CollectionError, match="bfhrf"):
            get_method("hashrf").ensure_supported(disparate=True)


class TestSpecValidation:
    def test_bad_memory_class_rejected(self):
        with pytest.raises(ValueError, match="memory_class"):
            MethodSpec(name="x", runner=lambda *a, **k: [],
                       summary="s", memory_class="gpu")


class TestGeneratedDocs:
    def test_markdown_table_lists_every_method(self):
        table = methods_markdown_table()
        for name in method_names():
            assert f"`{name}`" in table
        assert table.splitlines()[0].startswith("| Method |")

    def test_docstring_block_lists_every_method(self):
        block = methods_docstring()
        for name in method_names():
            assert f"``{name}``" in block

    def test_average_rf_docstring_is_generated(self):
        from repro.core.api import average_rf

        for name in method_names():
            assert f"``{name}``" in average_rf.__doc__
        assert "<<METHOD_LIST>>" not in average_rf.__doc__

    def test_docs_api_md_table_in_sync(self):
        """docs/api.md embeds the registry table between markers; it must
        match the live registry byte for byte."""
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "docs" / "api.md"
        text = doc.read_text()
        start = text.index("<!-- method-table:start -->")
        end = text.index("<!-- method-table:end -->")
        embedded = text[start:end].split("-->", 1)[1].strip()
        assert embedded == methods_markdown_table().strip()
