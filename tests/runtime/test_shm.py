"""Lifecycle, leak, and crash tests for the shared-memory payload layer.

The contract under test: segments are invisible to correctness (bitwise
parity is covered in ``test_backend_parity``) and invisible to the
filesystem once their owner releases them — after a clean run, after a
mid-probe exception, after a SIGKILLed fork worker, and after a spawn
worker that never attaches.  ``/dev/shm`` leak checking itself is
enforced suite-wide by an autouse fixture in ``tests/conftest.py``;
the tests here additionally assert emptiness at the interesting
intermediate points.
"""

import os
import pickle
import signal

import multiprocessing as mp

import numpy as np
import pytest

from repro.bipartitions.extract import bipartition_masks
from repro.core.bfhrf import build_bfh
from repro.core.vectorized import VectorizedBFH
from repro.runtime.shm import (
    SEGMENT_PREFIX,
    SharedBFH,
    SharedBFHDescriptor,
    SharedTreeCollection,
    leaked_segments,
    owned_leaked_segments,
)
from repro.runtime.executor import shutdown_pools
from tests.conftest import make_collection


@pytest.fixture
def trees():
    return make_collection(n_taxa=12, n_trees=8, seed=404)


@pytest.fixture
def shared(trees):
    bfh = build_bfh(trees)
    with SharedBFH.from_bfh(bfh, 12) as sb:
        yield sb, bfh


class TestSharedBFHLayout:
    def test_round_trips_dict_hash(self, shared):
        sb, bfh = shared
        back = sb.to_bfh()
        assert back.counts == bfh.counts
        assert back.n_trees == bfh.n_trees
        assert back.total == bfh.total
        assert back.include_trivial == bfh.include_trivial

    def test_matches_vectorized_layout_exactly(self, shared, trees):
        sb, bfh = shared
        vbfh = VectorizedBFH.from_bfh(bfh, 12)
        assert np.array_equal(sb.keys, vbfh.keys)
        assert np.array_equal(sb.freqs, vbfh.freqs)

    def test_probe_answers_match_dict(self, shared):
        sb, bfh = shared
        for mask, count in bfh.counts.items():
            assert sb.frequency(mask) == count
        assert sb.frequency(0) == 0  # no stored split is empty

    def test_vectorized_view_is_zero_copy(self, shared):
        sb, _bfh = shared
        vbfh = sb.vectorized()
        assert vbfh.keys.base is not None  # a view, not a sorted copy
        assert np.shares_memory(vbfh.keys, sb.keys)
        assert np.shares_memory(vbfh.freqs, sb.freqs)

    def test_from_trees(self, trees):
        bfh = build_bfh(trees)
        with SharedBFH.from_trees(trees) as sb:
            assert sb.to_bfh().counts == bfh.counts

    def test_splitless_reference(self):
        from repro.newick import trees_from_string

        stars = trees_from_string("(A,B,C,D);\n(A,B,C,D);")
        with SharedBFH.from_trees(stars) as sb:
            assert len(sb) == 0
            assert sb.frequency(0b0011) == 0
        assert owned_leaked_segments() == []


class TestLifecycle:
    def test_context_manager_unlinks_on_success(self, trees):
        bfh = build_bfh(trees)
        with SharedBFH.from_bfh(bfh, 12) as sb:
            name = sb.name
            assert name in leaked_segments()
        assert name not in leaked_segments()

    def test_context_manager_unlinks_on_exception(self, trees):
        bfh = build_bfh(trees)
        with pytest.raises(RuntimeError, match="mid-probe"):
            with SharedBFH.from_bfh(bfh, 12) as sb:
                name = sb.name
                sb.frequency(next(iter(bfh.counts)))
                raise RuntimeError("mid-probe failure")
        assert name not in leaked_segments()

    def test_release_is_idempotent(self, trees):
        sb = SharedBFH.from_bfh(build_bfh(trees), 12)
        sb.release()
        sb.release()
        sb.close()
        sb.unlink()
        assert owned_leaked_segments() == []

    def test_attacher_close_does_not_unlink(self, shared):
        sb, bfh = shared
        attached = SharedBFH.attach(sb.descriptor())
        assert np.array_equal(attached.keys, sb.keys)
        attached.release()  # non-owner: close only
        assert sb.name in leaked_segments()
        assert sb.frequency(next(iter(bfh.counts))) > 0

    def test_attached_arrays_are_read_only(self, shared):
        sb, _bfh = shared
        attached = SharedBFH.attach(sb.descriptor())
        try:
            assert not attached.keys.flags.writeable
            assert not attached.freqs.flags.writeable
            with pytest.raises(ValueError):
                attached.freqs[0] = 99
        finally:
            attached.release()

    def test_pickles_as_small_descriptor(self, shared):
        sb, _bfh = shared
        blob = pickle.dumps(sb)
        assert len(blob) < 1024  # descriptor, not the table
        clone = pickle.loads(blob)
        try:
            assert np.array_equal(clone.keys, sb.keys)
            assert np.array_equal(clone.freqs, sb.freqs)
        finally:
            # The attach cache owns in-worker clones; here we are our own
            # "worker", so evict explicitly.
            from repro.runtime.shm import _ATTACH_CACHE

            _ATTACH_CACHE.pop(sb.name, None)
            clone.close()

    def test_descriptor_fields(self, shared):
        sb, bfh = shared
        d = sb.descriptor()
        assert isinstance(d, SharedBFHDescriptor)
        assert d.name.startswith(SEGMENT_PREFIX)
        assert d.n_keys == len(bfh.counts)
        assert d.n_trees == bfh.n_trees
        assert d.total == bfh.total


# -- crash-shaped lifecycles --------------------------------------------------
# Helpers must be module-level so spawn children can import them.

def _attach_and_sigkill(descriptor):
    SharedBFH.attach(descriptor)
    os.kill(os.getpid(), signal.SIGKILL)


def _attach_and_exit(descriptor, out):
    attached = SharedBFH.attach(descriptor)
    out.put(int(attached.freqs.sum()))
    attached.close()


def _never_attaches(_descriptor):
    raise RuntimeError("worker died before attaching")


class TestWorkerDeath:
    def test_sigkilled_fork_attacher_does_not_reap_segment(self, shared):
        sb, bfh = shared
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_attach_and_sigkill, args=(sb.descriptor(),))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL
        # The parent's segment must have survived the worker's death …
        assert sb.name in leaked_segments()
        assert sb.frequency(next(iter(bfh.counts))) > 0

    def test_spawn_attacher_exit_does_not_reap_segment(self, shared):
        sb, bfh = shared
        ctx = mp.get_context("spawn")
        out = ctx.Queue()
        proc = ctx.Process(target=_attach_and_exit, args=(sb.descriptor(), out))
        proc.start()
        total = out.get(timeout=60)
        proc.join(timeout=60)
        # A clean spawn exit runs the child's resource tracker; without
        # the attach-side unregister it would unlink the parent's name.
        assert total == int(sb.freqs.sum())
        assert sb.name in leaked_segments()
        assert sb.frequency(next(iter(bfh.counts))) > 0

    def test_spawn_worker_that_never_attaches(self, shared):
        sb, _bfh = shared
        ctx = mp.get_context("spawn")
        proc = ctx.Process(target=_never_attaches, args=(sb.descriptor(),))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode != 0
        assert sb.name in leaked_segments()  # still owned by the parent


class TestSharedTreeCollection:
    def test_lazy_until_pickled(self, trees):
        col = SharedTreeCollection(trees)
        assert col.segment_nbytes() == 0
        assert owned_leaked_segments() == []  # nothing materialized
        assert col.slice(1, 3) == trees[1:3]  # parent slices in memory
        col.release()  # release of a never-materialized collection is a no-op

    def test_worker_side_masks_are_bitwise_identical(self, trees):
        col = SharedTreeCollection(trees, include_lengths=False)
        descriptor = col._materialize()
        attached = SharedTreeCollection.attach(descriptor)
        try:
            parsed = attached.slice(0, len(trees))
            assert [bipartition_masks(t) for t in parsed] \
                == [bipartition_masks(t) for t in trees]
        finally:
            attached.close()
            col.release()
        assert owned_leaked_segments() == []

    def test_weighted_lengths_round_trip_exactly(self, trees):
        from repro.bipartitions.extract import bipartitions_with_lengths

        col = SharedTreeCollection(trees, include_lengths=True)
        attached = SharedTreeCollection.attach(col._materialize())
        try:
            parsed = attached.trees
            assert [bipartitions_with_lengths(t) for t in parsed] \
                == [bipartitions_with_lengths(t) for t in trees]
        finally:
            attached.close()
            col.release()

    def test_hostile_labels_survive(self):
        from repro.newick import trees_from_string

        text = "(('sp one','sp_two'),('it''s',d_4));\n(('sp one','it''s'),('sp_two',d_4));"
        trees = trees_from_string(text)
        col = SharedTreeCollection(trees, include_lengths=False)
        attached = SharedTreeCollection.attach(col._materialize())
        try:
            parsed = attached.trees
            assert [bipartition_masks(t) for t in parsed] \
                == [bipartition_masks(t) for t in trees]
        finally:
            attached.close()
            col.release()

    def test_mixed_namespaces_rejected(self, trees):
        other = make_collection(n_taxa=12, n_trees=1, seed=405)
        with pytest.raises(ValueError, match="shared TaxonNamespace"):
            SharedTreeCollection(trees + other)

    def test_pickle_ships_descriptor_not_trees(self, trees):
        col = SharedTreeCollection(trees, include_lengths=False)
        try:
            blob = pickle.dumps(col)
            assert len(blob) < 1024
            assert col.segment_nbytes() > 0  # pickling materialized it
        finally:
            from repro.runtime.shm import _ATTACH_CACHE

            _ATTACH_CACHE.pop(col.name, None)
            col.release()


class TestPoolReuse:
    def test_cached_pool_sees_fresh_payload_per_fanout(self, trees):
        """Regression: a reused pool must not serve a stale payload."""
        from repro.core.shmrf import shm_average_rf
        from repro.core.bfhrf import bfhrf_average_rf

        other = make_collection(n_taxa=12, n_trees=6, seed=77)
        first = shm_average_rf(trees, trees, n_workers=2, executor="spawn")
        second = shm_average_rf(other, other, n_workers=2, executor="spawn")
        assert first == bfhrf_average_rf(trees, trees)
        assert second == bfhrf_average_rf(other, other)

    def test_shutdown_pools_idempotent(self):
        shutdown_pools()
        shutdown_pools()
