"""Admission control: every overload path sheds with a typed
``overloaded`` error — never a hang, never silent buffering — and the
shed is visible in ``serve.admission_rejected`` counters.

These tests drive the daemon with a raw socket so requests can be
*pipelined* (the blocking ``ServeClient`` is strictly request/reply):
frames are written back-to-back without reading, which is exactly the
client behaviour admission control exists to bound.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import write_newick
from repro.serve import ServeClient, ServeConfig, serving
from repro.serve.protocol import ERROR_TYPES, decode_frame, encode_frame
from repro.store import build_store

from tests.conftest import make_collection

pytest.importorskip("numpy")


@pytest.fixture
def collection():
    return make_collection(10, 12, seed=20260813)


@pytest.fixture
def store_dir(tmp_path, collection):
    path = tmp_path / "store"
    build_store(path, collection, n_shards=1)
    return path


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(socket_path=str(tmp_path / "serve.sock"),
                    tail_interval_s=0.05)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _text(trees) -> str:
    return "\n".join(write_newick(t) for t in trees)


def _pipelined(socket_path: str, frames: list[dict]) -> dict[int, dict]:
    """Write every frame at once, then collect one reply per frame.

    Returns replies keyed by request id (reply order is not the send
    order once requests run concurrently).
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    try:
        sock.connect(socket_path)
        buffer = b""
        while b"\n" not in buffer:            # the hello
            buffer += sock.recv(65536)
        _, buffer = buffer.split(b"\n", 1)
        sock.sendall(b"".join(encode_frame(f) for f in frames))
        replies: dict[int, dict] = {}
        while len(replies) < len(frames):
            while b"\n" not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise AssertionError(
                        f"daemon hung up after {len(replies)} of "
                        f"{len(frames)} replies")
                buffer += chunk
            line, buffer = buffer.split(b"\n", 1)
            reply = decode_frame(line)
            replies[reply["id"]] = reply
        return replies
    finally:
        sock.close()


def _error_type(reply: dict) -> str | None:
    return None if reply.get("ok") else reply["error"]["type"]


def test_overloaded_is_a_registered_error_type():
    assert "overloaded" in ERROR_TYPES


class TestInflightCap:
    def test_pipelining_past_the_cap_sheds_typed(self, tmp_path, store_dir,
                                                 collection):
        """With max_inflight=1 and the first query parked in a batch
        window, every further pipelined frame is shed immediately."""
        config = _config(tmp_path, max_inflight=1, batch_window_s=0.3)
        probe = _text(collection[:2])
        frames = [{"id": i, "op": "query", "trees": probe}
                  for i in (1, 2, 3)]
        with serving(store_dir, config) as daemon:
            replies = _pipelined(daemon.config.socket_path, frames)
            with ServeClient.connect(daemon.config.socket_path) as client:
                stats = client.stats()
        shed = [rid for rid, r in replies.items()
                if _error_type(r) == "overloaded"]
        served = [rid for rid, r in replies.items() if r.get("ok")]
        assert served == [1], "exactly the first request must be answered"
        assert sorted(shed) == [2, 3]
        assert replies[1]["values"] == bfhrf_average_rf(collection[:2],
                                                        collection)
        counters = stats["metrics"]["counters"]
        assert counters["serve.admission_rejected"] >= 2
        assert counters["serve.admission_rejected.inflight"] >= 2

    def test_connection_survives_a_shed(self, tmp_path, store_dir,
                                        collection):
        """An overloaded reply is not a hang-up: the same connection can
        retry and succeed once load clears."""
        from repro.util.errors import ServeRequestError

        config = _config(tmp_path, max_inflight=1, batch_window_s=0.0)
        want = bfhrf_average_rf(collection[:1], collection)
        with serving(store_dir, config) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                # Sequential request/reply never trips the cap...
                assert client.query(_text(collection[:1])) == want
                # ...and after any shed the channel would still be usable:
                # prove it by hand-feeding a shed then reusing the client
                # path on the same wire semantics.
                try:
                    client.request("query", trees=_text(collection[:1]))
                except ServeRequestError:  # pragma: no cover - timing
                    pass
                assert client.query(_text(collection[:1])) == want


class TestBoundedQueue:
    def test_full_request_queue_sheds_instead_of_buffering(
            self, tmp_path, store_dir, collection):
        """queue_max_requests=1 with a stalled batcher: the first query
        is in the batch window, the second waits in the queue, and
        everything after that is shed with ``overloaded``."""
        config = _config(tmp_path, queue_max_requests=1,
                         batch_window_s=0.4, max_inflight=64)
        probe = _text(collection[:1])
        frames = [{"id": i, "op": "query", "trees": probe}
                  for i in range(1, 6)]
        with serving(store_dir, config) as daemon:
            replies = _pipelined(daemon.config.socket_path, frames)
            with ServeClient.connect(daemon.config.socket_path) as client:
                stats = client.stats()
        kinds = {rid: _error_type(r) for rid, r in replies.items()}
        assert all(k in (None, "overloaded") for k in kinds.values()), kinds
        served = [r for r in replies.values() if r.get("ok")]
        shed = [r for r in replies.values()
                if _error_type(r) == "overloaded"]
        assert served, "at least the in-window query must be answered"
        assert shed, "a 1-deep queue under 5 pipelined queries must shed"
        want = bfhrf_average_rf(collection[:1], collection)
        for reply in served:
            assert reply["values"] == want  # bitwise, shed or not
        counters = stats["metrics"]["counters"]
        assert counters["serve.admission_rejected"] >= len(shed)
        assert counters["serve.admission_rejected.queue_requests"] >= 1

    def test_queued_trees_backpressure(self, tmp_path, store_dir,
                                       collection):
        """Once queued trees would exceed queue_max_trees, further
        queries shed even though the request queue has room."""
        import time

        config = _config(tmp_path, queue_max_trees=4, batch_window_s=0.6,
                         queue_max_requests=100, max_inflight=64)
        with serving(store_dir, config) as daemon:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(30.0)
            try:
                sock.connect(daemon.config.socket_path)
                buffer = b""
                while b"\n" not in buffer:
                    buffer += sock.recv(65536)
                _, buffer = buffer.split(b"\n", 1)
                # 3 queued trees (in the batch window), then +2 would
                # burst the cap of 4, +1 still fits, then +1 bursts.
                plan = [(1, 3), (2, 2), (3, 1), (4, 1)]
                for rid, n in plan:
                    sock.sendall(encode_frame(
                        {"id": rid, "op": "query",
                         "trees": _text(collection[:n])}))
                    time.sleep(0.06)  # keep admission order deterministic
                replies: dict[int, dict] = {}
                while len(replies) < len(plan):
                    while b"\n" not in buffer:
                        chunk = sock.recv(65536)
                        assert chunk, "daemon hung up mid-test"
                        buffer += chunk
                    line, buffer = buffer.split(b"\n", 1)
                    reply = decode_frame(line)
                    replies[reply["id"]] = reply
            finally:
                sock.close()
            with ServeClient.connect(daemon.config.socket_path) as client:
                stats = client.stats()
        assert replies[1]["ok"] and replies[3]["ok"]
        assert _error_type(replies[2]) == "overloaded"
        assert _error_type(replies[4]) == "overloaded"
        assert replies[1]["values"] == bfhrf_average_rf(collection[:3],
                                                        collection)
        counters = stats["metrics"]["counters"]
        assert counters["serve.admission_rejected.queue_trees"] >= 2

    def test_single_query_bigger_than_cap_still_runs(self, tmp_path,
                                                     store_dir, collection):
        """The backpressure cap never starves a query that is alone:
        one query larger than queue_max_trees is admitted to an empty
        queue (the frame cap bounds its true size)."""
        config = _config(tmp_path, queue_max_trees=2)
        want = bfhrf_average_rf(collection, collection)
        with serving(store_dir, config) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.query(_text(collection)) == want


class TestStatsSurface:
    def test_admission_block_in_stats(self, tmp_path, store_dir):
        config = _config(tmp_path, max_inflight=7, queue_max_requests=11,
                         queue_max_trees=13)
        with serving(store_dir, config) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                stats = client.stats()
        assert stats["admission"] == {"max_inflight": 7,
                                      "queue_max_requests": 11,
                                      "queue_max_trees": 13,
                                      "queued_trees": 0}
        assert stats["listeners"] == [f"unix://{daemon.config.socket_path}"]
