"""End-to-end daemon tests over a real unix socket.

Every query answer is held to the store contract: bitwise-identical to
the direct in-process ``bfhrf_average_rf`` computation — through
batching, journal tailing, the shm worker path, and shutdown drains.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import trees_from_string, write_newick
from repro.serve import Endpoint, ServeClient, ServeConfig, serving
from repro.store import BFHStore, build_store

from tests.conftest import make_collection

pytest.importorskip("numpy")


@pytest.fixture
def collection():
    return make_collection(12, 24, seed=20260809)


@pytest.fixture
def store_dir(tmp_path, collection):
    path = tmp_path / "store"
    build_store(path, collection, n_shards=2)
    return path


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(socket_path=str(tmp_path / "serve.sock"),
                    tail_interval_s=0.05)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _text(trees) -> str:
    return "\n".join(write_newick(t) for t in trees)


class TestSingleQuery:
    def test_parity_with_direct_api(self, tmp_path, store_dir, collection):
        want = bfhrf_average_rf(collection, collection)
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                got = client.query(_text(collection))
        assert got == want  # bitwise, not approx

    def test_query_trees_helper_and_reply_metadata(self, tmp_path, store_dir,
                                                   collection):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.ping()
                got = client.query_trees(collection[:3])
                reply = client.request("query", trees=_text(collection[:3]))
        assert got == bfhrf_average_rf(collection[:3], collection)
        assert reply["trees"] == 3
        assert reply["reference_trees"] == len(collection)
        assert reply["generation"] >= 1

    def test_empty_query_text(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.query("") == []

    def test_nexus_query(self, tmp_path, store_dir, collection):
        nexus = ("#NEXUS\nBEGIN TREES;\n"
                 + "".join(f"TREE t{i} = {write_newick(t)}\n"
                           for i, t in enumerate(collection[:2]))
                 + "END;\n")
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                got = client.query(nexus)
        assert got == bfhrf_average_rf(collection[:2], collection)

    def test_stats_introspection(self, tmp_path, store_dir, collection):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                client.query(_text(collection[:2]))
                stats = client.stats()
        assert stats["server"] == "bfhrf-serve"
        assert stats["draining"] is False
        assert stats["store"]["trees"] == len(collection)
        metrics = stats["metrics"]
        assert metrics["counters"]["serve.batches"] >= 1
        assert metrics["histograms"]["serve.probe_seconds"]["count"] >= 1
        assert metrics["histograms"]["serve.queue_wait_seconds"]["count"] >= 1


class TestConcurrentBatching:
    N_CLIENTS = 6

    def test_interleaved_clients_batch_and_stay_bitwise_exact(
            self, tmp_path, store_dir, collection):
        """N clients fire at once; the window coalesces them into shared
        probes and every client still gets the exact per-tree answers."""
        config = _config(tmp_path, batch_window_s=0.05)
        slices = [collection[i::self.N_CLIENTS]
                  for i in range(self.N_CLIENTS)]
        want = [bfhrf_average_rf(s, collection) for s in slices]
        results: list[list[float] | None] = [None] * self.N_CLIENTS
        errors: list[BaseException] = []
        barrier = threading.Barrier(self.N_CLIENTS)

        with serving(store_dir, config) as daemon:
            def _one(i: int) -> None:
                try:
                    with ServeClient.connect(daemon.config.socket_path,
                                             retries=3) as client:
                        barrier.wait(timeout=10)
                        results[i] = client.query(_text(slices[i]))
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=_one, args=(i,))
                       for i in range(self.N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            with ServeClient.connect(daemon.config.socket_path) as client:
                stats = client.stats()

        assert not errors
        assert results == want
        batches = stats["metrics"]["histograms"]["serve.batch_requests"]
        assert batches["max"] >= 2, "no batch ever coalesced >1 request"
        assert stats["metrics"]["counters"]["serve.batches"] < self.N_CLIENTS

    def test_shared_connection_sequential_requests(self, tmp_path, store_dir,
                                                   collection):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                for tree in collection[:5]:
                    got = client.query(write_newick(tree))
                    assert got == bfhrf_average_rf([tree], collection)


class TestWorkerPath:
    def test_shm_fanout_matches_serial_daemon(self, tmp_path, store_dir,
                                              collection):
        want = bfhrf_average_rf(collection, collection)
        with serving(store_dir, _config(
                tmp_path, workers=2, executor="thread")) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                got = client.query(_text(collection))
                stats = client.stats()
        assert got == want
        assert stats["metrics"]["counters"]["serve.shared_rebuilds"] >= 1


class TestJournalTailing:
    def _wait_for_values(self, client, text, want, deadline_s=10.0):
        """Poll until the daemon's answers converge on ``want``.

        The reply's ``reference_trees`` can run ahead of its values (a
        tail landing between the probe and the metadata read), so the
        values themselves are the convergence signal.
        """
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            reply = client.request("query", trees=text)
            if reply["values"] == want:
                return reply
            time.sleep(0.02)
        raise AssertionError(
            f"daemon answers never converged on the tailed store "
            f"(last: {reply['values']} with "
            f"{reply['reference_trees']} reference trees)")

    def test_external_add_visible_without_restart(self, tmp_path, store_dir,
                                                  collection):
        extra = make_collection(12, 3, seed=20260810)
        probe = _text(collection[:4])
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                before = client.query(probe)

                # Another process appends to the journal.
                external = BFHStore.open(store_dir)
                extra = trees_from_string(_text(extra),
                                          external.namespace())
                external.add_trees(extra)

                want = bfhrf_average_rf(collection[:4], collection + extra)
                assert want != before  # the add must change the answers
                reply = self._wait_for_values(client, probe, want)

        assert reply["reference_trees"] == len(collection) + len(extra)
        assert reply["epoch"] >= 1

    def test_external_remove_visible_without_restart(self, tmp_path,
                                                     store_dir, collection):
        probe = _text(collection[:4])
        want = bfhrf_average_rf(collection[:4], collection[:-2])
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                external = BFHStore.open(store_dir)
                external.remove_trees(collection[-2:])
                reply = self._wait_for_values(client, probe, want)
        assert reply["reference_trees"] == len(collection) - 2


class TestGracefulShutdown:
    def test_shutdown_mid_stream_answers_pending_queries(
            self, tmp_path, store_dir, collection):
        """Queries queued behind a batch window are answered (not dropped)
        even when shutdown lands while they wait."""
        config = _config(tmp_path, batch_window_s=0.2)
        want = bfhrf_average_rf(collection[:4], collection)
        results: list[list[float]] = []
        errors: list[BaseException] = []

        daemon_ctx = serving(store_dir, config)
        daemon = daemon_ctx.__enter__()
        try:
            def _query() -> None:
                try:
                    with ServeClient.connect(daemon.config.socket_path,
                                             retries=3) as client:
                        results.append(client.query(_text(collection[:4])))
                except BaseException as exc:
                    errors.append(exc)

            thread = threading.Thread(target=_query)
            thread.start()
            time.sleep(0.05)  # query is in flight, sitting in the window
            daemon.request_shutdown()
            thread.join(timeout=30)
        finally:
            daemon_ctx.__exit__(None, None, None)

        assert not errors
        assert results == [want]

    def test_socket_unlinked_after_stop(self, tmp_path, store_dir):
        config = _config(tmp_path)
        with serving(store_dir, config):
            pass
        import os
        assert not os.path.exists(config.socket_path)

    def test_draining_daemon_refuses_new_queries(self, tmp_path, store_dir,
                                                 collection):
        from repro.util.errors import ServeRequestError

        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                client.request("shutdown")
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    try:
                        client.query(_text(collection[:1]))
                    except ServeRequestError as exc:
                        assert exc.type == "shutting-down"
                        break
                    except Exception:
                        break  # connection already torn down: also fine
                    time.sleep(0.01)


class TestTcpListener:
    """The tentpole parity bar: unix and TCP listeners on one daemon
    answer bitwise-identically."""

    def test_tcp_and_unix_serve_bitwise_identical(self, tmp_path, store_dir,
                                                  collection):
        config = _config(tmp_path, endpoints=["tcp://127.0.0.1:0"])
        want = bfhrf_average_rf(collection, collection)
        with serving(store_dir, config) as daemon:
            unix_ep, tcp_ep = daemon.bound_endpoints
            assert tcp_ep.port != 0  # ephemeral bind resolved
            with ServeClient.connect(unix_ep) as client:
                via_unix = client.query(_text(collection))
            with ServeClient.connect(tcp_ep) as client:
                via_tcp = client.query(_text(collection))
                stats = client.stats()
        assert via_unix == want
        assert via_tcp == want  # bitwise across transports
        counters = stats["metrics"]["counters"]
        assert counters["serve.connections.unix"] >= 1
        assert counters["serve.connections.tcp"] >= 1
        assert sorted(stats["listeners"]) == sorted(
            [str(unix_ep), str(tcp_ep)])

    def test_tcp_only_daemon(self, tmp_path, store_dir, collection):
        config = ServeConfig(endpoints=["tcp://127.0.0.1:0"],
                             tail_interval_s=0.05)
        assert config.socket_path is None
        with serving(store_dir, config) as daemon:
            (tcp_ep,) = daemon.bound_endpoints
            with ServeClient.connect(tcp_ep) as client:
                got = client.query(_text(collection[:2]))
        assert got == bfhrf_average_rf(collection[:2], collection)

    def test_tcp_url_string_connects(self, tmp_path, store_dir, collection):
        config = _config(tmp_path, endpoints=["tcp://127.0.0.1:0"])
        with serving(store_dir, config) as daemon:
            tcp_ep = daemon.bound_endpoints[1]
            with ServeClient.connect(str(tcp_ep)) as client:
                assert client.ping()


class TestReconnectBackoff:
    def test_client_wins_race_against_late_daemon(self, tmp_path, store_dir,
                                                  collection):
        """connect(retries=...) keeps dialing while the daemon is still
        starting — the socket path does not even exist yet
        (``FileNotFoundError``), which must count as retryable just like
        ``ConnectionRefusedError``."""
        config = _config(tmp_path)
        want = bfhrf_average_rf(collection[:2], collection)
        got: list[list[float]] = []
        errors: list[BaseException] = []

        def _connect_early() -> None:
            try:
                with ServeClient.connect(config.socket_path, retries=40,
                                         backoff_s=0.02,
                                         max_backoff_s=0.1) as client:
                    got.append(client.query(_text(collection[:2])))
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=_connect_early)
        thread.start()
        time.sleep(0.15)  # let the client burn a few not-found attempts
        with serving(store_dir, config):
            thread.join(timeout=30)
        assert not errors
        assert got == [want]

    def test_connection_refused_is_retried(self, tmp_path, store_dir,
                                           collection, monkeypatch):
        """A bound-but-not-yet-accepting daemon (ECONNREFUSED) is the
        other face of the startup race; backoff must cover it too."""
        real = Endpoint.create_connection
        calls = {"n": 0}

        def flaky(self, timeout):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ConnectionRefusedError("simulated not-listening")
            return real(self, timeout)

        monkeypatch.setattr(Endpoint, "create_connection", flaky)
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path, retries=5,
                                     backoff_s=0.01) as client:
                got = client.query(_text(collection[:1]))
        assert calls["n"] == 3  # two refusals retried, third connected
        assert got == bfhrf_average_rf(collection[:1], collection)

    def test_other_oserrors_fail_fast(self, monkeypatch):
        """Errors backoff cannot fix (permissions, unreachable hosts)
        must not burn the retry budget — fail on the first attempt."""
        from repro.util.errors import ServeConnectionError

        calls = {"n": 0}

        def denied(self, timeout):
            calls["n"] += 1
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr(Endpoint, "create_connection", denied)
        with pytest.raises(ServeConnectionError, match="cannot connect"):
            ServeClient.connect("/tmp/forbidden.sock", retries=10,
                                backoff_s=0.01)
        assert calls["n"] == 1

    def test_no_retries_fails_fast(self, tmp_path):
        from repro.util.errors import ServeConnectionError

        with pytest.raises(ServeConnectionError, match="cannot connect"):
            ServeClient.connect(tmp_path / "nobody-home.sock")
