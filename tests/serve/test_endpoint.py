"""The ``Endpoint`` addressing layer: parsing, rendering, and the hello
frame round-tripping the listener a connection arrived on."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.serve import Endpoint, ServeClient, ServeConfig, serving
from repro.store import build_store
from repro.util.errors import ServeConnectionError

from tests.conftest import make_collection

pytest.importorskip("numpy")


class TestParse:
    def test_unix_url_absolute_path(self):
        ep = Endpoint.parse("unix:///var/run/bfhrf.sock")
        assert (ep.kind, ep.path) == ("unix", "/var/run/bfhrf.sock")

    def test_unix_url_relative_path(self):
        ep = Endpoint.parse("unix://run/bfhrf.sock")
        assert (ep.kind, ep.path) == ("unix", "run/bfhrf.sock")

    def test_bare_path_is_legacy_unix(self):
        ep = Endpoint.parse("/tmp/serve.sock")
        assert (ep.kind, ep.path) == ("unix", "/tmp/serve.sock")

    def test_pathlike_is_unix(self):
        ep = Endpoint.parse(Path("/tmp/serve.sock"))
        assert (ep.kind, ep.path) == ("unix", "/tmp/serve.sock")

    def test_tcp_host_port(self):
        ep = Endpoint.parse("tcp://127.0.0.1:7654")
        assert (ep.kind, ep.host, ep.port) == ("tcp", "127.0.0.1", 7654)

    def test_tcp_hostname(self):
        ep = Endpoint.parse("tcp://localhost:0")
        assert (ep.kind, ep.host, ep.port) == ("tcp", "localhost", 0)

    def test_tcp_ipv6_brackets(self):
        ep = Endpoint.parse("tcp://[::1]:7654")
        assert (ep.kind, ep.host, ep.port) == ("tcp", "::1", 7654)

    def test_endpoint_passes_through(self):
        ep = Endpoint.tcp("127.0.0.1", 9)
        assert Endpoint.parse(ep) is ep

    def test_scheme_is_case_insensitive(self):
        assert Endpoint.parse("TCP://h:1").kind == "tcp"
        assert Endpoint.parse("UNIX:///s").kind == "unix"

    @pytest.mark.parametrize("bad", [
        "",                          # empty address
        "unix://",                   # no path
        "http://host:80",            # unsupported scheme
        "ftp:///x",                  # unsupported scheme
        "tcp://host",                # missing port
        "tcp://:123",                # missing host
        "tcp://host:",               # empty port
        "tcp://host:notaport",       # non-integer port
        "tcp://host:70000",          # port out of range
        "tcp://host:-1",             # negative port
        "tcp://[::1]",               # bracket host without port
        "tcp://[::1",                # unterminated bracket
        "tcp://[::1]8080",           # no colon after bracket
    ])
    def test_bad_addresses_raise_typed(self, bad):
        with pytest.raises(ServeConnectionError):
            Endpoint.parse(bad)

    def test_non_string_raises_typed(self):
        with pytest.raises(ServeConnectionError, match="int"):
            Endpoint.parse(1234)


class TestRendering:
    @pytest.mark.parametrize("url", [
        "unix:///var/run/bfhrf.sock",
        "unix://relative.sock",
        "tcp://127.0.0.1:7654",
        "tcp://[::1]:7654",
    ])
    def test_str_round_trips(self, url):
        ep = Endpoint.parse(url)
        assert str(ep) == url
        assert Endpoint.parse(str(ep)) == ep

    def test_describe_carries_kind_and_addr(self):
        assert Endpoint.parse("tcp://h:1").describe() == {
            "kind": "tcp", "addr": "tcp://h:1"}

    def test_with_port(self):
        ep = Endpoint.parse("tcp://127.0.0.1:0").with_port(4242)
        assert str(ep) == "tcp://127.0.0.1:4242"

    def test_frozen_and_hashable(self):
        a = Endpoint.parse("unix:///s")
        b = Endpoint.parse("unix:///s")
        assert a == b and hash(a) == hash(b)
        with pytest.raises(Exception):
            a.kind = "tcp"


class TestConfigEndpoints:
    def test_socket_path_folds_into_endpoints(self, tmp_path):
        config = ServeConfig(socket_path=str(tmp_path / "s.sock"))
        assert config.endpoints == (Endpoint.unix(str(tmp_path / "s.sock")),)

    def test_endpoints_backfill_socket_path(self, tmp_path):
        config = ServeConfig(endpoints=[f"unix://{tmp_path}/s.sock",
                                        "tcp://127.0.0.1:0"])
        assert config.socket_path == f"{tmp_path}/s.sock"
        assert len(config.endpoints) == 2

    def test_duplicate_endpoints_collapse(self, tmp_path):
        path = str(tmp_path / "s.sock")
        config = ServeConfig(socket_path=path,
                             endpoints=[f"unix://{path}", path])
        assert config.endpoints == (Endpoint.unix(path),)

    def test_no_endpoints_rejected(self):
        from repro.util.errors import ServeError

        with pytest.raises(ServeError, match="at least one endpoint"):
            ServeConfig()

    def test_queue_max_trees_defaults_to_batch_max(self):
        config = ServeConfig(socket_path="/tmp/x.sock", batch_max_trees=77)
        assert config.queue_max_trees == 77


class TestHelloListener:
    @pytest.fixture
    def store_dir(self, tmp_path):
        path = tmp_path / "store"
        build_store(path, make_collection(8, 6, seed=20260812), n_shards=1)
        return path

    def test_hello_round_trips_listener_kind(self, tmp_path, store_dir):
        config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                             endpoints=["tcp://127.0.0.1:0"],
                             tail_interval_s=0.05)
        with serving(store_dir, config) as daemon:
            unix_ep, tcp_ep = daemon.bound_endpoints
            assert unix_ep.kind == "unix" and tcp_ep.kind == "tcp"
            assert tcp_ep.port != 0, "ephemeral port must be resolved"
            with ServeClient.connect(unix_ep) as client:
                assert client.hello["listener"] == {
                    "kind": "unix", "addr": str(unix_ep)}
            with ServeClient.connect(tcp_ep) as client:
                assert client.hello["listener"] == {
                    "kind": "tcp", "addr": str(tcp_ep)}
                assert client.endpoint == tcp_ep
