"""Fault injection: every failure mode ends in a typed error or a clean
recovery — never a hang, never a traceback over the wire."""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import write_newick
from repro.serve import ServeClient, ServeConfig, ServeDaemon, serving
from repro.serve.protocol import decode_frame, encode_frame
from repro.store import BFHStore, build_store
from repro.util.errors import (
    ServeConnectionError,
    ServeError,
    ServeRequestError,
)

from tests.conftest import make_collection

pytest.importorskip("numpy")


@pytest.fixture
def collection():
    return make_collection(10, 16, seed=20260811)


@pytest.fixture
def store_dir(tmp_path, collection):
    path = tmp_path / "store"
    build_store(path, collection, n_shards=2)
    return path


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(socket_path=str(tmp_path / "serve.sock"),
                    tail_interval_s=0.05)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _text(trees) -> str:
    return "\n".join(write_newick(t) for t in trees)


def _raw_connect(socket_path: str) -> tuple[socket.socket, dict]:
    """A bare socket past the hello, for sending hostile bytes."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(socket_path)
    buffer = b""
    while b"\n" not in buffer:
        buffer += sock.recv(65536)
    hello_line, _ = buffer.split(b"\n", 1)
    return sock, decode_frame(hello_line)


def _raw_request(sock: socket.socket, payload: bytes) -> dict:
    sock.sendall(payload)
    buffer = b""
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("daemon closed instead of replying")
        buffer += chunk
    line, _ = buffer.split(b"\n", 1)
    return decode_frame(line)


class TestMalformedFrames:
    def test_non_json_frame_gets_bad_request_and_connection_survives(
            self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            sock, hello = _raw_connect(daemon.config.socket_path)
            assert hello["server"] == "bfhrf-serve"
            reply = _raw_request(sock, b"((A,B),C); this is not json\n")
            assert reply["ok"] is False
            assert reply["error"]["type"] == "bad-request"
            # Same connection, next frame: still served.
            reply = _raw_request(
                sock, encode_frame({"id": 1, "op": "ping"}))
            assert reply == {"id": 1, "ok": True, "pong": True}
            sock.close()

    def test_json_array_frame_is_bad_request(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            sock, _ = _raw_connect(daemon.config.socket_path)
            reply = _raw_request(sock, b"[1, 2, 3]\n")
            assert reply["error"]["type"] == "bad-request"
            sock.close()

    def test_missing_op_and_unknown_op(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    client.request("frobnicate")
                assert excinfo.value.type == "unknown-op"
                sock, _ = _raw_connect(daemon.config.socket_path)
                reply = _raw_request(sock, b'{"id": 5}\n')
                assert reply["error"]["type"] == "bad-request"
                sock.close()
                assert client.ping()  # the first client is unharmed

    def test_query_with_non_string_trees(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    client.request("query", trees=[1, 2])
                assert excinfo.value.type == "bad-request"

    def test_unparseable_newick_is_parse_error(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    client.query("((A,B),C")  # unbalanced
                assert excinfo.value.type == "parse-error"
                assert client.ping()  # typed error, connection usable


class TestOversizedFrames:
    def test_oversized_frame_typed_error_then_hangup(self, tmp_path,
                                                     store_dir, collection):
        config = _config(tmp_path, max_frame_bytes=1024)
        with serving(store_dir, config) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                big = _text(collection * 8)
                assert len(big) > config.max_frame_bytes
                with pytest.raises(ServeRequestError) as excinfo:
                    client.query(big)
                assert excinfo.value.type == "oversized-frame"
                # The stream cannot be resynced: the daemon hangs up.
                with pytest.raises(ServeConnectionError):
                    client.ping()
            # The daemon itself is fine — a new client gets real answers.
            with ServeClient.connect(daemon.config.socket_path) as client:
                small = _text(collection[:1])
                assert client.query(small) == bfhrf_average_rf(
                    collection[:1], collection)


class TestClientDisconnects:
    def test_disconnect_mid_response_leaves_daemon_healthy(
            self, tmp_path, store_dir, collection):
        with serving(store_dir, _config(tmp_path)) as daemon:
            for _ in range(3):
                sock, _ = _raw_connect(daemon.config.socket_path)
                sock.sendall(encode_frame(
                    {"id": 1, "op": "query", "trees": _text(collection)}))
                sock.close()  # gone before the reply can be written
            deadline = time.monotonic() + 10
            while True:  # the daemon must keep accepting and answering
                try:
                    with ServeClient.connect(daemon.config.socket_path,
                                             retries=3) as client:
                        got = client.query(_text(collection[:2]))
                    break
                except ServeConnectionError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
        assert got == bfhrf_average_rf(collection[:2], collection)

    def test_half_frame_then_disconnect(self, tmp_path, store_dir):
        with serving(store_dir, _config(tmp_path)) as daemon:
            sock, _ = _raw_connect(daemon.config.socket_path)
            sock.sendall(b'{"id": 1, "op": "qu')  # no newline, ever
            sock.close()
            with ServeClient.connect(daemon.config.socket_path,
                                     retries=3) as client:
                assert client.ping()


class TestCompactionRace:
    def test_external_compaction_during_queries(self, tmp_path, store_dir,
                                                collection):
        """A compaction by another process mid-serve: the daemon reopens
        at the new generation and answers stay bitwise correct."""
        probe = collection[:3]
        want = bfhrf_average_rf(probe, collection)
        with serving(store_dir, _config(tmp_path)) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.query(_text(probe)) == want

                external = BFHStore.open(store_dir)
                external.add_trees(collection[:1])
                external.remove_trees(collection[:1])  # journal traffic
                old_generation = external.generation
                external.compact()
                assert external.generation > old_generation

                deadline = time.monotonic() + 10
                while True:
                    reply = client.request("query", trees=_text(probe))
                    assert reply["values"] == want  # exact throughout
                    if reply["generation"] == external.generation:
                        break
                    if time.monotonic() > deadline:
                        raise AssertionError(
                            "daemon never reopened at the compacted "
                            f"generation (still {reply['generation']})")
                    time.sleep(0.02)
                stats = client.stats()
        assert stats["metrics"]["counters"]["serve.reopens"] >= 1


class TestSocketRecovery:
    def test_stale_socket_from_killed_daemon_is_reclaimed(
            self, tmp_path, store_dir, collection):
        """SIGKILL leaves the socket file behind; the next daemon probes
        it, finds nobody home, unlinks, and serves."""
        config = _config(tmp_path)
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(config.socket_path)
        stale.close()  # close() without unlink == what SIGKILL leaves
        import os
        assert os.path.exists(config.socket_path)

        with serving(store_dir, config) as daemon:
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.query(_text(collection[:1])) == \
                    bfhrf_average_rf(collection[:1], collection)
                stats = client.stats()
        counters = stats["metrics"]["counters"]
        assert counters["serve.stale_sockets_recovered"] == 1

    def test_live_socket_is_refused(self, tmp_path, store_dir):
        config = _config(tmp_path)
        with serving(store_dir, config):
            rival = ServeDaemon(store_dir, config)
            with pytest.raises(ServeError, match="already serving"):
                rival.run_in_thread()

    def test_non_socket_file_is_refused(self, tmp_path, store_dir):
        config = _config(tmp_path)
        with open(config.socket_path, "w") as handle:
            handle.write("precious data, do not unlink\n")
        daemon = ServeDaemon(store_dir, config)
        with pytest.raises(ServeError, match="not a socket"):
            daemon.run_in_thread()
        with open(config.socket_path) as handle:  # untouched
            assert "precious" in handle.read()


class TestTcpFaults:
    """Hostile TCP clients: half-open shutdowns, abortive resets, and
    malformed frames must leave the daemon serving everyone else."""

    def _tcp_config(self, tmp_path) -> ServeConfig:
        return _config(tmp_path, endpoints=["tcp://127.0.0.1:0"])

    def _tcp_connect(self, endpoint) -> tuple[socket.socket, dict]:
        sock = socket.create_connection((endpoint.host, endpoint.port),
                                        timeout=10.0)
        buffer = b""
        while b"\n" not in buffer:
            buffer += sock.recv(65536)
        hello_line, _ = buffer.split(b"\n", 1)
        return sock, decode_frame(hello_line)

    def test_half_open_client_mid_frame_does_not_wedge(
            self, tmp_path, store_dir, collection):
        """A client that sends half a frame then shuts down its write
        side (TCP half-open: FIN with the read side still up) must be
        dropped cleanly, not leave a handler waiting forever."""
        with serving(store_dir, self._tcp_config(tmp_path)) as daemon:
            tcp_ep = daemon.bound_endpoints[1]
            sock, hello = self._tcp_connect(tcp_ep)
            assert hello["listener"]["kind"] == "tcp"
            sock.sendall(b'{"id": 1, "op": "query", "trees": "((A,')
            sock.shutdown(socket.SHUT_WR)  # half-open: we can still read
            # The daemon sees EOF mid-frame and hangs up its side too.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sock.recv(65536) == b"":
                    break
            else:
                raise AssertionError("daemon never closed the half-open "
                                     "connection")
            sock.close()
            # Everyone else is still being served, on both listeners.
            with ServeClient.connect(tcp_ep) as client:
                assert client.query(_text(collection[:1])) == \
                    bfhrf_average_rf(collection[:1], collection)
            with ServeClient.connect(daemon.config.socket_path) as client:
                assert client.ping()

    def test_abortive_reset_after_request_is_survived(
            self, tmp_path, store_dir, collection):
        """A client that fires a query then resets the connection (RST
        via SO_LINGER 0) mid-reply must not take the daemon down."""
        import struct

        with serving(store_dir, self._tcp_config(tmp_path)) as daemon:
            tcp_ep = daemon.bound_endpoints[1]
            sock, _ = self._tcp_connect(tcp_ep)
            sock.sendall(encode_frame(
                {"id": 1, "op": "query", "trees": _text(collection)}))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()  # RST: the reply write will fail server-side
            time.sleep(0.1)
            with ServeClient.connect(tcp_ep) as client:
                assert client.query(_text(collection[:2])) == \
                    bfhrf_average_rf(collection[:2], collection)

    def test_malformed_frame_over_tcp_gets_typed_error(
            self, tmp_path, store_dir):
        """Error paths are transport-agnostic: bad JSON over TCP gets
        the same typed reply as over unix, and the connection lives."""
        with serving(store_dir, self._tcp_config(tmp_path)) as daemon:
            tcp_ep = daemon.bound_endpoints[1]
            sock, _ = self._tcp_connect(tcp_ep)
            try:
                reply = _raw_request(sock, b"this is not json\n")
                assert reply["ok"] is False
                assert reply["error"]["type"] == "bad-request"
                reply = _raw_request(sock, encode_frame(
                    {"id": 7, "op": "ping"}))
                assert reply == {"id": 7, "ok": True, "pong": True}
            finally:
                sock.close()
