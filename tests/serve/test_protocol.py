"""The NDJSON wire layer: framing, reply shapes, hello validation."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.serve.protocol import (
    ERROR_TYPES,
    PROTOCOL_VERSION,
    SERVER_NAME,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
)
from repro.serve import ServeClient
from repro.util.errors import ServeProtocolError


class TestFraming:
    def test_round_trip(self):
        obj = {"id": 7, "op": "query", "trees": "((A,B),C);"}
        assert decode_frame(encode_frame(obj).rstrip(b"\n")) == obj

    def test_encode_is_one_line(self):
        frame = encode_frame({"id": 1, "note": "no\nnewlines leak"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_encode_survives_unicode_labels(self):
        obj = {"trees": "((Homo_sapiens,Gorille_de_l’Est),X);"}
        assert decode_frame(encode_frame(obj)[:-1]) == obj

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServeProtocolError, match="not valid JSON"):
            decode_frame(b"((A,B),C);")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeProtocolError, match="must be a JSON object"):
            decode_frame(b"[1,2,3]")

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(ServeProtocolError, match="not valid JSON"):
            decode_frame(b'{"op": "\xff\xfe"}')


class TestReplyShapes:
    def test_ok_reply_echoes_id(self):
        reply = ok_reply(42, values=[1.0])
        assert reply == {"id": 42, "ok": True, "values": [1.0]}

    def test_error_reply_is_typed(self):
        reply = error_reply(9, "parse-error", "bad newick")
        assert reply["ok"] is False
        assert reply["error"] == {"type": "parse-error",
                                  "message": "bad newick"}

    def test_every_documented_error_type_encodes(self):
        for error_type in ERROR_TYPES:
            assert decode_frame(
                encode_frame(error_reply(None, error_type, "x"))[:-1]
            )["error"]["type"] == error_type

    def test_undocumented_error_type_is_a_bug(self):
        with pytest.raises(AssertionError):
            error_reply(1, "made-up-type", "nope")


def _fake_daemon(tmp_path, hello_frame: bytes):
    """A one-connection impostor serving a canned hello."""
    path = tmp_path / "fake.sock"
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(str(path))
    server.listen(1)

    def _serve():
        conn, _ = server.accept()
        conn.sendall(hello_frame)
        conn.recv(1)  # hold the connection open until the client reacts
        conn.close()

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    return path, server


class TestHelloValidation:
    def test_client_rejects_wrong_server(self, tmp_path):
        path, server = _fake_daemon(tmp_path, encode_frame(
            {"type": "hello", "server": "not-bfhrf",
             "protocol": PROTOCOL_VERSION}))
        try:
            with pytest.raises(ServeProtocolError, match="did not greet"):
                ServeClient.connect(path, timeout=5.0)
        finally:
            server.close()

    def test_client_rejects_future_protocol(self, tmp_path):
        path, server = _fake_daemon(tmp_path, encode_frame(
            {"type": "hello", "server": SERVER_NAME,
             "protocol": PROTOCOL_VERSION + 1}))
        try:
            with pytest.raises(ServeProtocolError, match="protocol"):
                ServeClient.connect(path, timeout=5.0)
        finally:
            server.close()
