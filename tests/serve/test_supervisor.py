"""The multi-process supervisor: SO_REUSEPORT workers, crash respawn,
and pool-wide stop — driven through the real CLI in a subprocess, the
way production runs it.

The acceptance bar: SIGKILL any single worker and no client retry ever
exceeds its backoff budget — connections land on survivors immediately
and a respawned worker rejoins within seconds.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import write_newick
from repro.serve import Endpoint, ServeClient, ServeConfig, ServeSupervisor
from repro.store import build_store
from repro.util.errors import ServeError

from tests.conftest import make_collection

pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork") or not hasattr(socket, "SO_REUSEPORT"),
    reason="supervisor needs fork and SO_REUSEPORT")


@pytest.fixture
def collection():
    return make_collection(10, 12, seed=20260814)


@pytest.fixture
def store_dir(tmp_path, collection):
    path = tmp_path / "store"
    build_store(path, collection, n_shards=2)
    return path


def _text(trees) -> str:
    return "\n".join(write_newick(t) for t in trees)


def _free_port() -> int:
    sock = socket.socket()
    try:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
    finally:
        sock.close()


def _connect_with_budget(addr, deadline_s: float = 15.0) -> ServeClient:
    """One reconnect-with-backoff budget; exceeding it fails the test."""
    return ServeClient.connect(addr, retries=60, backoff_s=0.05,
                               max_backoff_s=0.25, timeout=deadline_s)


class _Pool:
    """A supervisor pool running as a real CLI subprocess."""

    def __init__(self, store_dir, tmp_path, n_procs=2):
        self.socket_path = str(tmp_path / "pool.sock")
        self.port = _free_port()
        self.tcp_addr = f"tcp://127.0.0.1:{self.port}"
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(Path(__file__).resolve()
                                 .parents[2] / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "start",
             str(store_dir),
             "--addr", f"unix://{self.socket_path}",
             "--addr", self.tcp_addr,
             "--procs", str(n_procs),
             "--tail-interval", "0.1", "--quiet"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)

    def wait_ready(self, deadline_s: float = 30.0) -> None:
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    "supervisor exited early:\n"
                    + self.proc.stderr.read().decode())
            try:
                with ServeClient.connect(self.socket_path) as client:
                    client.ping()
                return
            except Exception:
                time.sleep(0.05)
        raise AssertionError("pool never became ready")

    def worker_pids(self, attempts: int = 30) -> set[int]:
        """Distinct worker pids, discovered by repeatedly asking stats
        (connections land on whichever worker accepts first).  A
        connection reset by a just-killed worker is skipped, not fatal."""
        from repro.util.errors import ServeConnectionError

        pids: set[int] = set()
        for _ in range(attempts):
            try:
                with _connect_with_budget(self.tcp_addr) as client:
                    pids.add(client.stats()["pid"])
            except ServeConnectionError:
                continue
        return pids

    def stop(self, timeout: float = 20.0) -> int:
        if self.proc.poll() is None:
            with _connect_with_budget(self.socket_path) as client:
                client.shutdown()
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def pool(store_dir, tmp_path):
    pool = _Pool(store_dir, tmp_path, n_procs=2)
    try:
        pool.wait_ready()
        yield pool
    finally:
        pool.kill()


class TestPoolServing:
    def test_workers_share_endpoints_and_answer_bitwise(self, pool,
                                                        collection):
        want = bfhrf_average_rf(collection, collection)
        with _connect_with_budget(pool.socket_path) as client:
            assert client.query(_text(collection)) == want
        with _connect_with_budget(pool.tcp_addr) as client:
            assert client.query(_text(collection)) == want
            assert client.stats()["listeners"] == [
                f"unix://{pool.socket_path}", pool.tcp_addr]

    def test_two_distinct_worker_pids(self, pool):
        assert len(pool.worker_pids()) == 2

    def test_sigkilled_worker_respawns_and_service_continues(
            self, pool, collection):
        """SIGKILL one worker: queries keep succeeding within a single
        client backoff budget, and a fresh pid joins the pool."""
        before = pool.worker_pids()
        assert len(before) == 2
        victim = sorted(before)[0]
        os.kill(victim, signal.SIGKILL)

        # Zero failures beyond the backoff budget: a connection the
        # dead worker had already accepted dies with a reset — that
        # casualty must be recovered by ONE fresh reconnect-with-backoff
        # (a survivor or the respawn picks it up); a second failure
        # fails the test.
        from repro.util.errors import ServeConnectionError

        want = bfhrf_average_rf(collection[:2], collection)
        for _ in range(10):
            try:
                with _connect_with_budget(pool.tcp_addr) as client:
                    assert client.query(_text(collection[:2])) == want
            except ServeConnectionError:
                with _connect_with_budget(pool.tcp_addr) as client:
                    assert client.query(_text(collection[:2])) == want

        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pids = pool.worker_pids(attempts=10)
            if victim not in pids and len(pids) == 2:
                break
            time.sleep(0.2)
        else:
            raise AssertionError(
                f"no respawned worker appeared (still seeing {pids})")

    def test_stop_request_tears_down_whole_pool(self, pool):
        assert pool.stop() == 0
        assert not os.path.exists(pool.socket_path), \
            "supervisor must unlink its unix socket"

    def test_sigterm_supervisor_exits_cleanly(self, pool):
        pool.proc.send_signal(signal.SIGTERM)
        assert pool.proc.wait(timeout=20) == 0
        assert not os.path.exists(pool.socket_path)


class TestSupervisorValidation:
    def _config(self, tmp_path, **overrides) -> ServeConfig:
        defaults = dict(socket_path=str(tmp_path / "v.sock"))
        defaults.update(overrides)
        return ServeConfig(**defaults)

    def test_rejects_ephemeral_tcp_port_with_multiple_procs(
            self, tmp_path, store_dir):
        config = self._config(tmp_path, endpoints=["tcp://127.0.0.1:0"])
        with pytest.raises(ServeError, match="ephemeral"):
            ServeSupervisor(store_dir, config, n_procs=2)

    def test_rejects_nonpositive_procs(self, tmp_path, store_dir):
        with pytest.raises(ServeError, match="procs"):
            ServeSupervisor(store_dir, self._config(tmp_path), n_procs=0)

    def test_worker_config_enables_reuse_port_for_tcp(self, tmp_path,
                                                      store_dir):
        port = _free_port()
        config = self._config(
            tmp_path, endpoints=[f"tcp://127.0.0.1:{port}"])
        supervisor = ServeSupervisor(store_dir, config, n_procs=2)
        assert supervisor._worker_config.reuse_port is True
        assert config.reuse_port is False  # caller's config untouched

    def test_unix_only_pool_keeps_reuse_port_off(self, tmp_path, store_dir):
        supervisor = ServeSupervisor(store_dir, self._config(tmp_path),
                                     n_procs=2)
        assert supervisor._worker_config.reuse_port is False
