"""Unit tests for repro.simulation.coalescent (MSC gene trees)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.day import day_rf
from repro.newick import parse_newick
from repro.simulation.coalescent import gene_tree_msc, node_ages
from repro.simulation.yule import yule_tree
from repro.trees.validate import validate_tree
from repro.util.errors import SimulationError, TreeStructureError


class TestNodeAges:
    def test_ultrametric_leaves_zero(self):
        t = yule_tree(10, rng=1)
        ages = node_ages(t)
        for leaf in t.leaves():
            assert ages[id(leaf)] == pytest.approx(0.0, abs=1e-12)

    def test_root_is_oldest(self):
        t = yule_tree(10, rng=2)
        ages = node_ages(t)
        assert ages[id(t.root)] == max(ages.values())

    def test_manual_tree(self):
        t = parse_newick("((A:1,B:1):1,C:2);")
        ages = node_ages(t)
        assert ages[id(t.root)] == pytest.approx(2.0)

    def test_requires_lengths(self):
        t = parse_newick("((A,B),(C,D));")
        with pytest.raises(TreeStructureError):
            node_ages(t)


class TestGeneTree:
    def test_same_taxa_and_namespace(self):
        sp = yule_tree(12, rng=3)
        g = gene_tree_msc(sp, rng=4)
        assert g.taxon_namespace is sp.taxon_namespace
        assert sorted(g.leaf_labels()) == sorted(sp.leaf_labels())

    def test_binary_and_valid(self):
        sp = yule_tree(15, rng=5)
        g = gene_tree_msc(sp, rng=6)
        validate_tree(g, require_binary=True)
        assert g.is_binary()

    def test_deterministic(self):
        from repro.newick import write_newick

        sp = yule_tree(10, rng=7)
        a = gene_tree_msc(sp, rng=8)
        b = gene_tree_msc(sp, rng=8)
        assert write_newick(a) == write_newick(b)

    def test_branch_lengths_nonnegative(self):
        sp = yule_tree(20, rng=9)
        g = gene_tree_msc(sp, rng=10)
        for node in g.preorder():
            if node.parent is not None:
                assert node.length is not None and node.length >= -1e-12

    def test_gene_tree_root_at_least_species_root_age(self):
        sp = yule_tree(10, rng=11)
        g = gene_tree_msc(sp, rng=12)
        assert max(node_ages(g).values()) >= max(node_ages(sp).values()) - 1e-9

    def test_pop_scale_controls_discordance(self):
        """Small populations (fast coalescence) -> gene trees track the
        species tree; large -> heavy incomplete lineage sorting."""
        sp = yule_tree(24, rng=13)
        rng_tight = np.random.default_rng(14)
        rng_loose = np.random.default_rng(14)
        tight = np.mean([day_rf(sp, gene_tree_msc(sp, pop_scale=0.01, rng=rng_tight))
                         for _ in range(10)])
        loose = np.mean([day_rf(sp, gene_tree_msc(sp, pop_scale=20.0, rng=rng_loose))
                         for _ in range(10)])
        assert tight < loose

    def test_tiny_pop_scale_recovers_species_tree(self):
        sp = yule_tree(16, rng=15)
        g = gene_tree_msc(sp, pop_scale=1e-6, rng=16)
        assert day_rf(sp, g) == 0

    def test_rejects_bad_pop_scale(self):
        sp = yule_tree(6, rng=17)
        with pytest.raises(SimulationError):
            gene_tree_msc(sp, pop_scale=0.0)

    def test_species_tree_without_lengths_rejected(self):
        sp = parse_newick("((A,B),(C,D));")
        with pytest.raises(TreeStructureError):
            gene_tree_msc(sp)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 32), st.integers(0, 2000))
    def test_property_always_valid(self, n, seed):
        sp = yule_tree(n, rng=seed)
        g = gene_tree_msc(sp, rng=seed + 1)
        assert g.n_leaves == n
        assert g.is_binary()
