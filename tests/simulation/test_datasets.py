"""Unit tests for repro.simulation.datasets (the Table II factory)."""

import pytest

from repro.simulation.datasets import (
    avian_like,
    clear_dataset_cache,
    insect_like,
    table2_datasets,
    variable_taxa,
    variable_trees,
)
from repro.trees.validate import validate_collection
from repro.util.errors import SimulationError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestFamilies:
    def test_avian_shape(self):
        ds = avian_like(r=20)
        assert ds.n_taxa == 48
        assert ds.n_trees == 20
        assert ds.kind == "real-like"
        validate_collection(ds.trees, require_binary=True)

    def test_avian_is_weighted(self):
        ds = avian_like(r=5)
        lengths = [n.length for t in ds.trees for n in t.preorder()
                   if n.parent is not None]
        assert all(l is not None for l in lengths)

    def test_insect_shape_and_unweighted(self):
        ds = insect_like(r=5)
        assert ds.n_taxa == 144
        lengths = [n.length for t in ds.trees for n in t.preorder()]
        assert all(l is None for l in lengths)

    def test_variable_trees(self):
        ds = variable_trees(15)
        assert ds.n_taxa == 100
        assert ds.n_trees == 15

    def test_variable_taxa(self):
        ds = variable_taxa(30, r=10)
        assert ds.n_taxa == 30
        assert ds.n_trees == 10

    def test_shared_namespace_within_dataset(self):
        ds = variable_trees(8)
        assert all(t.taxon_namespace is ds.namespace for t in ds.trees)

    def test_species_tree_attached(self):
        ds = variable_trees(5)
        assert ds.species_tree is not None
        assert ds.species_tree.n_leaves == 100


class TestDeterminismAndCache:
    def test_same_seed_same_trees(self):
        from repro.newick import write_newick

        a = variable_trees(6, seed=5)
        clear_dataset_cache()
        b = variable_trees(6, seed=5)
        assert [write_newick(t, include_lengths=False) for t in a.trees] == \
            [write_newick(t, include_lengths=False) for t in b.trees]

    def test_different_seeds_differ(self):
        from repro.newick import write_newick

        a = variable_trees(6, seed=5)
        b = variable_trees(6, seed=6)
        assert [write_newick(t) for t in a.trees] != [write_newick(t) for t in b.trees]

    def test_cache_returns_same_object(self):
        a = variable_trees(6, seed=5)
        b = variable_trees(6, seed=5)
        assert a is b


class TestPrefix:
    def test_prefix_protocol(self):
        ds = variable_trees(10)
        head = ds.prefix(4)
        assert head.n_trees == 4
        assert head.trees == ds.trees[:4]
        assert head.n_taxa == ds.n_taxa

    def test_prefix_too_long(self):
        ds = variable_trees(5)
        with pytest.raises(SimulationError):
            ds.prefix(6)


class TestTable2:
    def test_all_four_families(self):
        datasets = table2_datasets(avian_r=5, insect_r=4, vt_r=6, vs_n=20, vs_r=3)
        names = [d.name for d in datasets]
        assert names == ["Avian-like", "Insect-like", "Variable Trees",
                         "Variable Species"]
        assert [d.n_taxa for d in datasets] == [48, 144, 100, 20]
        assert [d.n_trees for d in datasets] == [5, 4, 6, 3]
