"""Unit tests for repro.simulation.perturb (NNI / SPR moves)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rf import robinson_foulds
from repro.newick import parse_newick
from repro.simulation.perturb import perturbed_collection, random_nni, random_spr
from repro.simulation.yule import yule_tree
from repro.trees.validate import validate_tree
from repro.util.errors import SimulationError


class TestNNI:
    def test_preserves_leaves_and_binaryness(self):
        t = yule_tree(14, rng=1)
        labels = sorted(t.leaf_labels())
        random_nni(t, rng=2)
        assert sorted(t.leaf_labels()) == labels
        assert t.is_binary()
        validate_tree(t)

    def test_changes_at_most_one_split(self):
        base = yule_tree(14, rng=3)
        moved = base.copy()
        random_nni(moved, rng=4)
        assert robinson_foulds(base, moved) <= 2

    def test_too_small_tree(self):
        t = parse_newick("(A,B,C);")
        with pytest.raises(SimulationError):
            random_nni(t, rng=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(5, 24), st.integers(0, 3000))
    def test_property_valid_after_many_moves(self, n, seed):
        t = yule_tree(n, rng=seed)
        for i in range(5):
            random_nni(t, rng=seed + i)
        assert t.n_leaves == n
        assert t.is_binary()
        validate_tree(t)


class TestSPR:
    def test_preserves_leaves(self):
        t = yule_tree(14, rng=5)
        labels = sorted(t.leaf_labels())
        random_spr(t, rng=6)
        assert sorted(t.leaf_labels()) == labels
        validate_tree(t)

    def test_changes_topology_usually(self):
        base = yule_tree(20, rng=7)
        distances = []
        for seed in range(8):
            moved = base.copy()
            random_spr(moved, rng=seed)
            distances.append(robinson_foulds(base, moved))
        assert any(d > 0 for d in distances)

    def test_too_small_tree(self):
        t = parse_newick("(A,B);")
        with pytest.raises(SimulationError):
            random_spr(t, rng=0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 20), st.integers(0, 3000))
    def test_property_valid_after_moves(self, n, seed):
        t = yule_tree(n, rng=seed)
        for i in range(3):
            random_spr(t, rng=seed * 7 + i)
        assert t.n_leaves == n
        validate_tree(t)


class TestPerturbedCollection:
    def test_sizes(self):
        base = yule_tree(12, rng=8)
        col = perturbed_collection(base, 7, moves=2, rng=9)
        assert len(col) == 7
        assert all(t.n_leaves == 12 for t in col)
        assert all(t.taxon_namespace is base.taxon_namespace for t in col)

    def test_zero_moves_identical(self):
        base = yule_tree(10, rng=10)
        col = perturbed_collection(base, 3, moves=0, rng=11)
        assert all(robinson_foulds(base, t) == 0 for t in col)

    def test_rf_grows_with_moves(self):
        base = yule_tree(30, rng=12)
        near = perturbed_collection(base, 10, moves=1, rng=13)
        far = perturbed_collection(base, 10, moves=15, rng=13)
        mean = lambda col: sum(robinson_foulds(base, t) for t in col) / len(col)
        assert mean(near) < mean(far)

    def test_deterministic(self):
        from repro.newick import write_newick

        base = yule_tree(10, rng=14)
        a = perturbed_collection(base, 4, moves=3, rng=15)
        b = perturbed_collection(base, 4, moves=3, rng=15)
        assert [write_newick(t) for t in a] == [write_newick(t) for t in b]

    def test_spr_kind(self):
        base = yule_tree(12, rng=16)
        col = perturbed_collection(base, 3, moves=1, move_kind="spr", rng=17)
        assert len(col) == 3

    def test_validation(self):
        base = yule_tree(8, rng=18)
        with pytest.raises(SimulationError):
            perturbed_collection(base, -1, rng=19)
        with pytest.raises(SimulationError):
            perturbed_collection(base, 1, moves=-1, rng=19)
        with pytest.raises(SimulationError):
            perturbed_collection(base, 1, move_kind="teleport", rng=19)

    def test_base_untouched(self):
        from repro.newick import write_newick

        base = yule_tree(12, rng=20)
        before = write_newick(base)
        perturbed_collection(base, 5, moves=4, rng=21)
        assert write_newick(base) == before
