"""Unit tests for repro.simulation.yule and .birthdeath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.birthdeath import birth_death_tree
from repro.simulation.coalescent import node_ages
from repro.simulation.yule import default_labels, yule_tree
from repro.trees import TaxonNamespace
from repro.trees.validate import validate_tree
from repro.util.errors import SimulationError


class TestDefaultLabels:
    def test_padding(self):
        assert default_labels(3) == ["T000", "T001", "T002"]

    def test_wide_padding(self):
        labels = default_labels(1500)
        assert labels[0] == "T0000"
        assert labels[-1] == "T1499"
        assert sorted(labels) == labels

    def test_prefix(self):
        assert default_labels(2, prefix="sp")[0] == "sp000"


class TestYule:
    def test_leaf_count_and_binary(self):
        t = yule_tree(20, rng=1)
        assert t.n_leaves == 20
        assert t.is_binary()
        validate_tree(t, require_binary=True)

    def test_deterministic(self):
        from repro.newick import write_newick

        assert write_newick(yule_tree(10, rng=9)) == write_newick(yule_tree(10, rng=9))

    def test_ultrametric(self):
        t = yule_tree(15, rng=2)
        ages = node_ages(t)
        leaf_ages = [ages[id(leaf)] for leaf in t.leaves()]
        assert max(leaf_ages) == pytest.approx(0.0, abs=1e-12)
        assert all(abs(a) < 1e-9 for a in leaf_ages)

    def test_explicit_labels(self):
        t = yule_tree(["x", "y", "z"], rng=3)
        assert sorted(t.leaf_labels()) == ["x", "y", "z"]

    def test_shared_namespace(self):
        ns = TaxonNamespace()
        t = yule_tree(8, namespace=ns, rng=4)
        assert t.taxon_namespace is ns
        assert len(ns) == 8

    def test_birth_rate_scales_depth(self):
        slow = yule_tree(30, birth_rate=0.5, rng=5)
        fast = yule_tree(30, birth_rate=50.0, rng=5)
        depth = lambda t: max(node_ages(t).values())
        assert depth(slow) > depth(fast)

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_rejects_bad_rate(self, bad):
        with pytest.raises(SimulationError):
            yule_tree(5, birth_rate=bad)

    def test_rejects_one_taxon(self):
        with pytest.raises(SimulationError):
            yule_tree(1)

    def test_rejects_duplicate_labels(self):
        with pytest.raises(SimulationError):
            yule_tree(["a", "a"])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 64), st.integers(0, 10_000))
    def test_property_valid_binary(self, n, seed):
        t = yule_tree(n, rng=seed)
        assert t.n_leaves == n
        assert t.is_binary()

    def test_branch_lengths_positive(self):
        t = yule_tree(25, rng=6)
        for node in t.preorder():
            if node.parent is not None:
                assert node.length is not None and node.length >= 0


class TestBirthDeath:
    def test_exact_leaf_count(self):
        t = birth_death_tree(12, death_rate=0.3, rng=7)
        assert t.n_leaves == 12
        validate_tree(t, require_binary=False)

    def test_all_leaves_have_taxa(self):
        t = birth_death_tree(10, death_rate=0.4, rng=8)
        assert all(l.taxon is not None for l in t.leaves())
        assert len(set(t.leaf_labels())) == 10

    def test_zero_death_is_yule_like(self):
        t = birth_death_tree(10, death_rate=0.0, rng=9)
        assert t.n_leaves == 10
        assert t.is_binary()

    def test_deterministic(self):
        from repro.newick import write_newick

        a = birth_death_tree(8, death_rate=0.2, rng=10)
        b = birth_death_tree(8, death_rate=0.2, rng=10)
        assert write_newick(a) == write_newick(b)

    @pytest.mark.parametrize("mu,lam", [(-0.1, 1.0), (1.0, 1.0), (2.0, 1.0)])
    def test_rejects_bad_death_rate(self, mu, lam):
        with pytest.raises(SimulationError):
            birth_death_tree(5, birth_rate=lam, death_rate=mu)

    def test_rejects_bad_birth_rate(self):
        with pytest.raises(SimulationError):
            birth_death_tree(5, birth_rate=0.0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 24), st.integers(0, 5000))
    def test_property_survivors_form_binary_tree(self, n, seed):
        t = birth_death_tree(n, death_rate=0.4, rng=seed)
        assert t.n_leaves == n
        # After pruning extinct lineages the tree must stay binary.
        assert t.is_binary()
