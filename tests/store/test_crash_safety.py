"""Crash safety: every journal truncation point recovers or fails loudly.

The contract (docs/store.md): a journal cut anywhere inside the *last*
record — the only place an interrupted append can cut — must reopen to
the previous consistent state with ``recovered`` set; damage elsewhere
(bit flips, missing files) must raise :class:`StoreCorruptError` rather
than serve silently wrong frequencies.
"""

from __future__ import annotations

import json

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import trees_from_string
from repro.store import BFHStore, build_store
from repro.store.format import JOURNAL_HEADER_SIZE
from repro.util.errors import StoreCorruptError

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);")


def journal_path(root):
    manifest = json.loads((root / "manifest.json").read_text())
    return root / manifest["journal"]


@pytest.fixture
def store_dir(tmp_path):
    trees = trees_from_string(NWK)
    store = build_store(tmp_path / "s", trees[:2], n_shards=2)
    store.add_trees(trees[2:3])  # one committed journal record
    return tmp_path / "s"


class TestTornTail:
    def test_every_byte_boundary_of_the_last_record(self, store_dir):
        """Truncate after every single byte of the final record."""
        trees = trees_from_string(NWK)
        store = BFHStore.open(store_dir)
        consistent_len = journal_path(store_dir).stat().st_size
        expected = store.average_rf(trees)
        store.add_trees(trees[3:4])  # the record a crash will tear
        blob = journal_path(store_dir).read_bytes()
        assert len(blob) > consistent_len
        for cut in range(consistent_len + 1, len(blob)):
            journal_path(store_dir).write_bytes(blob[:cut])
            recovered = BFHStore.open(store_dir)
            assert recovered.recovered, f"cut at byte {cut} not flagged"
            assert recovered.n_trees == 3
            assert recovered.average_rf(trees) == expected, \
                f"cut at byte {cut} changed answers"

    def test_append_after_recovery_truncates_the_tail(self, store_dir):
        trees = trees_from_string(NWK)
        blob = journal_path(store_dir).read_bytes()
        journal_path(store_dir).write_bytes(blob[:-4])  # tear the record
        store = BFHStore.open(store_dir)
        assert store.recovered and store.n_trees == 2
        store.add_trees(trees[3:4])
        assert not store.recovered
        reopened = BFHStore.open(store_dir)
        assert not reopened.recovered
        assert reopened.n_trees == 3
        assert reopened.average_rf(trees) == \
            bfhrf_average_rf(trees, trees[:2] + trees[3:4])

    def test_truncation_to_bare_header_recovers_to_snapshot(self, store_dir):
        blob = journal_path(store_dir).read_bytes()
        journal_path(store_dir).write_bytes(blob[:JOURNAL_HEADER_SIZE + 1])
        store = BFHStore.open(store_dir)
        assert store.recovered
        assert store.n_trees == 2  # exactly the compacted snapshot state
        assert store.journal_records == 0


class TestLoudFailures:
    def test_bitflip_in_committed_record_is_corruption(self, store_dir):
        blob = bytearray(journal_path(store_dir).read_bytes())
        blob[JOURNAL_HEADER_SIZE + 10] ^= 0x04
        journal_path(store_dir).write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptError, match="corrupt"):
            BFHStore.open(store_dir)

    def test_journal_cut_into_header_is_corruption(self, store_dir):
        blob = journal_path(store_dir).read_bytes()
        journal_path(store_dir).write_bytes(blob[:JOURNAL_HEADER_SIZE - 3])
        with pytest.raises(StoreCorruptError):
            BFHStore.open(store_dir)

    def test_missing_journal_is_corruption(self, store_dir):
        journal_path(store_dir).unlink()
        with pytest.raises(StoreCorruptError, match="missing"):
            BFHStore.open(store_dir)

    def test_missing_shard_fails(self, store_dir):
        manifest = json.loads((store_dir / "manifest.json").read_text())
        (store_dir / manifest["shards"][0]["file"]).unlink()
        with pytest.raises((StoreCorruptError, FileNotFoundError)):
            BFHStore.open(store_dir)

    def test_manifest_missing_field_is_corruption(self, store_dir):
        manifest = json.loads((store_dir / "manifest.json").read_text())
        del manifest["labels"]
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptError, match="malformed"):
            BFHStore.open(store_dir)

    def test_manifest_wrong_typed_field_is_corruption(self, store_dir):
        manifest = json.loads((store_dir / "manifest.json").read_text())
        manifest["generation"] = "three"
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptError, match="malformed"):
            BFHStore.open(store_dir)

    def test_manifest_non_object_is_corruption(self, store_dir):
        (store_dir / "manifest.json").write_text("[1, 2, 3]\n")
        with pytest.raises(StoreCorruptError, match="not a JSON object"):
            BFHStore.open(store_dir)

    def test_foreign_journal_rejected(self, store_dir, tmp_path):
        other_trees = trees_from_string("((X,Y),(Z,W),V);")
        build_store(tmp_path / "other", other_trees)
        foreign = journal_path(tmp_path / "other").read_bytes()
        journal_path(store_dir).write_bytes(foreign)
        with pytest.raises(StoreCorruptError, match="different namespace"):
            BFHStore.open(store_dir)

    def test_replayed_underflow_is_corruption(self, store_dir):
        """A remove record whose tree was never added must not replay."""
        from repro.store.format import (OP_REMOVE, encode_record,
                                        encode_tree_payload)
        record = encode_record(OP_REMOVE,
                               encode_tree_payload([0b11111], 5))
        with open(journal_path(store_dir), "ab") as fh:
            fh.write(record)
        with pytest.raises(StoreCorruptError, match="replay failed"):
            BFHStore.open(store_dir)


class TestCompactionAtomicity:
    def test_unreferenced_new_generation_files_are_ignored(self, store_dir):
        """A crash after writing gen-N+1 files but before the manifest
        swap leaves them unreferenced; open() must use the old state."""
        store = BFHStore.open(store_dir)
        expected_trees = store.n_trees
        # Simulate the pre-commit half of a compaction crash.
        from repro.store.format import namespace_fingerprint, write_snapshot
        write_snapshot(store_dir / "shard-000099-000.snap",
                       {1: 1}, n_taxa=5,
                       fingerprint=namespace_fingerprint(store.labels))
        reopened = BFHStore.open(store_dir)
        assert reopened.n_trees == expected_trees
        assert reopened.generation == store.generation

    def test_manifest_commit_point(self, store_dir):
        trees = trees_from_string(NWK)
        store = BFHStore.open(store_dir)
        before = store.average_rf(trees)
        store.compact(3)
        assert BFHStore.open(store_dir).average_rf(trees) == before
