"""Snapshot/journal binary format: round-trips, word edges, corruption."""

from __future__ import annotations

import struct

import pytest

from repro.store.format import (
    JOURNAL_HEADER_SIZE,
    OP_ADD,
    OP_EXTEND_NS,
    OP_REMOVE,
    decode_labels_payload,
    decode_tree_payload,
    encode_labels_payload,
    encode_record,
    encode_tree_payload,
    journal_header,
    namespace_fingerprint,
    pack_key,
    read_journal,
    read_snapshot,
    unpack_key,
    words_for_taxa,
    write_snapshot,
)
from repro.util.errors import StoreCorruptError

FP = namespace_fingerprint([f"T{i}" for i in range(8)])


class TestKeyPacking:
    @pytest.mark.parametrize("n_taxa,words", [
        (1, 1), (63, 1), (64, 1), (65, 2), (127, 2), (128, 2), (129, 3),
    ])
    def test_word_width_changes_at_64_bit_edges(self, n_taxa, words):
        assert words_for_taxa(n_taxa) == words

    @pytest.mark.parametrize("n_taxa", [63, 64, 65, 127, 128, 129])
    def test_extreme_masks_roundtrip_at_boundaries(self, n_taxa):
        n_words = words_for_taxa(n_taxa)
        for mask in (1, (1 << n_taxa) - 1, 1 << (n_taxa - 1),
                     ((1 << n_taxa) - 1) ^ (1 << (n_taxa // 2))):
            packed = pack_key(mask, n_words)
            assert len(packed) == n_words * 8
            assert unpack_key(packed) == mask

    def test_overflowing_mask_rejected(self):
        with pytest.raises(OverflowError):
            pack_key(1 << 64, words_for_taxa(64))


class TestSnapshotRoundtrip:
    @pytest.mark.parametrize("n_taxa", [5, 63, 64, 65, 127, 128, 129])
    def test_counts_roundtrip_at_word_boundaries(self, tmp_path, n_taxa):
        counts = {1: 3, (1 << (n_taxa - 1)) | 1: 1, (1 << n_taxa) - 2: 7}
        path = tmp_path / "s.snap"
        assert write_snapshot(path, counts, n_taxa=n_taxa, fingerprint=FP) == 3
        data = read_snapshot(path)
        assert data.counts == counts
        assert data.n_taxa == n_taxa
        assert data.fingerprint == FP
        assert data.weights is None and not data.weighted

    def test_weighted_roundtrip_sorts_multisets(self, tmp_path):
        counts = {3: 2, 12: 1}
        weights = {3: [2.5, 0.5], 12: [1.0]}
        path = tmp_path / "w.snap"
        write_snapshot(path, counts, n_taxa=4, fingerprint=FP, weights=weights)
        data = read_snapshot(path)
        assert data.weighted
        assert data.weights == {3: [0.5, 2.5], 12: [1.0]}

    def test_weight_count_mismatch_rejected_at_write(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="weights for frequency"):
            write_snapshot(tmp_path / "bad.snap", {3: 2}, n_taxa=4,
                           fingerprint=FP, weights={3: [1.0]})

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "e.snap"
        write_snapshot(path, {}, n_taxa=0, fingerprint=FP)
        assert read_snapshot(path).counts == {}

    def test_bitflip_fails_crc(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, {1: 1, 6: 2}, n_taxa=4, fingerprint=FP)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptError, match="CRC"):
            read_snapshot(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, {1: 1, 6: 2}, n_taxa=4, fingerprint=FP)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) - 5])
        with pytest.raises(StoreCorruptError):
            read_snapshot(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "s.snap"
        path.write_bytes(b"NOTASNAP" + b"\0" * 40)
        with pytest.raises(StoreCorruptError):
            read_snapshot(path)


class TestTreePayload:
    @pytest.mark.parametrize("n_taxa", [4, 63, 64, 65, 128, 129])
    def test_roundtrip_sorts_masks(self, n_taxa):
        masks = [(1 << n_taxa) - 2, 3, 1 << (n_taxa - 1)]
        payload = encode_tree_payload(masks, n_taxa)
        got_masks, got_lengths, got_taxa = decode_tree_payload(
            payload, weighted=False)
        assert got_masks == sorted(masks)
        assert got_lengths is None
        assert got_taxa == n_taxa

    def test_lengths_follow_mask_order(self):
        masks = [12, 3]
        payload = encode_tree_payload(masks, 4, [0.25, 0.75])
        got_masks, got_lengths, _ = decode_tree_payload(payload, weighted=True)
        assert got_masks == [3, 12]
        assert got_lengths == [0.75, 0.25]

    def test_size_mismatch_rejected(self):
        payload = encode_tree_payload([3, 12], 4)
        with pytest.raises(StoreCorruptError):
            decode_tree_payload(payload + b"\0", weighted=False)
        with pytest.raises(StoreCorruptError):
            decode_tree_payload(payload, weighted=True)  # missing lengths


class TestLabelsPayload:
    def test_roundtrip(self):
        labels = ["taxon one", "it's", "a(b)", "δ"]
        assert decode_labels_payload(encode_labels_payload(labels)) == labels

    def test_empty(self):
        assert decode_labels_payload(encode_labels_payload([])) == []


class TestJournal:
    def _journal(self, tmp_path, records):
        path = tmp_path / "j.log"
        path.write_bytes(journal_header(FP) + b"".join(records))
        return path

    def test_roundtrip(self, tmp_path):
        path = self._journal(tmp_path, [
            encode_record(OP_ADD, encode_tree_payload([3, 12], 4)),
            encode_record(OP_EXTEND_NS, encode_labels_payload(["E"])),
            encode_record(OP_REMOVE, encode_tree_payload([3], 5)),
        ])
        records, offset, torn = read_journal(path)
        assert [r.op for r in records] == [OP_ADD, OP_EXTEND_NS, OP_REMOVE]
        assert offset == path.stat().st_size
        assert not torn

    def test_header_only(self, tmp_path):
        path = self._journal(tmp_path, [])
        assert read_journal(path) == ([], JOURNAL_HEADER_SIZE, False)

    def test_short_header_is_corrupt(self, tmp_path):
        path = tmp_path / "j.log"
        path.write_bytes(journal_header(FP)[:10])
        with pytest.raises(StoreCorruptError):
            read_journal(path)

    def test_torn_tail_is_recoverable_not_corrupt(self, tmp_path):
        whole = encode_record(OP_ADD, encode_tree_payload([3], 4))
        path = self._journal(tmp_path, [whole, whole[:len(whole) - 3]])
        records, offset, torn = read_journal(path)
        assert len(records) == 1
        assert offset == JOURNAL_HEADER_SIZE + len(whole)
        assert torn

    def test_complete_record_with_bad_crc_is_corrupt(self, tmp_path):
        record = bytearray(encode_record(OP_ADD, encode_tree_payload([3], 4)))
        record[6] ^= 0x01  # flip a payload bit; framing stays intact
        path = self._journal(tmp_path, [bytes(record)])
        with pytest.raises(StoreCorruptError, match="corrupt, not merely torn"):
            read_journal(path)

    def test_unknown_op_is_corrupt(self, tmp_path):
        import zlib
        payload = b"xx"
        record = struct.pack("<BI", 9, len(payload)) + payload + \
            struct.pack("<I", zlib.crc32(bytes([9]) + payload))
        path = self._journal(tmp_path, [record])
        with pytest.raises(StoreCorruptError, match="unknown record op"):
            read_journal(path)
