"""Format migration: v1 → v2 parity, crash atomicity, truncation.

The contract (docs/store.md): ``migrate`` is a compaction with a codec
switch, so it inherits the manifest-swap commit point — a crash at any
moment mid-migrate leaves the legacy store readable and byte-identical;
a completed migrate changes only the bytes on disk, never an answer.
"""

from __future__ import annotations

import json

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import trees_from_string
from repro.store import BFHStore, build_store, snapshot_sections
from repro.store.format import SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2
from repro.util.errors import StoreCorruptError, StoreError

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);")


def shard_paths(root):
    manifest = json.loads((root / "manifest.json").read_text())
    return [root / entry["file"] for entry in manifest["shards"]]


@pytest.fixture
def legacy_store(tmp_path):
    """A store written entirely in the v1 snapshot layout."""
    trees = trees_from_string(NWK)
    build_store(tmp_path / "s", trees, n_shards=2, codec="v1")
    return tmp_path / "s"


class TestMigrateParity:
    def test_queries_identical_across_all_three_states(self, legacy_store):
        """Legacy, migrated, and re-compacted answers must not differ
        by a single bit — the CI compat smoke's contract, in-process."""
        trees = trees_from_string(NWK)
        store = BFHStore.open(legacy_store)
        legacy = store.average_rf(trees)
        assert legacy == bfhrf_average_rf(trees, trees)

        summary = store.migrate()
        assert store.average_rf(trees) == legacy
        assert BFHStore.open(legacy_store).average_rf(trees) == legacy

        store = BFHStore.open(legacy_store)
        store.compact(3)
        assert BFHStore.open(legacy_store).average_rf(trees) == legacy

        assert summary["from_codec"] == "v1"
        assert summary["to_codec"] == "succinct-v1"
        assert summary["snapshot_bytes_before"] > 0
        assert summary["snapshot_bytes_after"] > 0

    def test_migrate_rewrites_every_shard_as_v2(self, legacy_store):
        for path in shard_paths(legacy_store):
            assert snapshot_sections(path)["version"] == SNAPSHOT_VERSION
        BFHStore.open(legacy_store).migrate()
        for path in shard_paths(legacy_store):
            section = snapshot_sections(path)
            assert section["version"] == SNAPSHOT_VERSION_V2
            assert section["codec"] == "succinct-v1"

    def test_legacy_store_compacts_back_to_v1_without_migrate(
            self, legacy_store):
        """Ordinary maintenance must never change a legacy store's
        format under readers that only speak v1."""
        store = BFHStore.open(legacy_store)
        assert store.snapshot_codec == "v1"
        store.add_trees(trees_from_string(NWK)[:1])
        store.compact(3)
        for path in shard_paths(legacy_store):
            assert snapshot_sections(path)["version"] == SNAPSHOT_VERSION

    def test_migrate_to_explicit_codec_and_back(self, legacy_store):
        trees = trees_from_string(NWK)
        store = BFHStore.open(legacy_store)
        want = store.average_rf(trees)
        store.migrate(codec="raw-u64")
        assert snapshot_sections(
            shard_paths(legacy_store)[0])["codec"] == "raw-u64"
        summary = BFHStore.open(legacy_store).migrate(codec="v1")
        assert summary["to_codec"] == "v1"
        assert snapshot_sections(
            shard_paths(legacy_store)[0])["version"] == SNAPSHOT_VERSION
        assert BFHStore.open(legacy_store).average_rf(trees) == want

    def test_unknown_codec_rejected_before_any_rewrite(self, legacy_store):
        store = BFHStore.open(legacy_store)
        generation = store.generation
        with pytest.raises((StoreError, ValueError), match="unknown codec"):
            store.migrate(codec="zstd")
        assert BFHStore.open(legacy_store).generation == generation

    def test_new_stores_default_to_succinct(self, tmp_path):
        trees = trees_from_string(NWK)
        build_store(tmp_path / "fresh", trees, n_shards=2)
        for path in shard_paths(tmp_path / "fresh"):
            assert snapshot_sections(path)["codec"] == "succinct-v1"

    def test_weighted_store_migrates_exactly(self, tmp_path):
        nwk = ("((A:0.5,B:0.25):0.125,(C:1.5,D:2.0):0.75,E:1.0);\n"
               "((A:0.1,C:0.2):0.3,(B:0.4,D:0.5):0.6,E:0.7);")
        trees = trees_from_string(nwk)
        build_store(tmp_path / "w", trees, n_shards=2, codec="v1",
                    weighted=True)
        store = BFHStore.open(tmp_path / "w")
        want = store.average_rf(trees)
        store.migrate()
        assert BFHStore.open(tmp_path / "w").average_rf(trees) == want


class TestMigrateCrashSafety:
    def test_crash_before_manifest_swap_leaves_v1_intact(
            self, legacy_store, monkeypatch):
        """Kill the migrate right before its commit point: the staged
        v2 shards must be unreferenced leftovers, the store still v1."""
        trees = trees_from_string(NWK)
        want = BFHStore.open(legacy_store).average_rf(trees)
        store = BFHStore.open(legacy_store)

        def crash(*args, **kwargs):
            raise OSError("simulated crash at the commit point")

        monkeypatch.setattr(store, "_write_manifest", crash)
        with pytest.raises(OSError, match="simulated crash"):
            store.migrate()

        reopened = BFHStore.open(legacy_store)
        for path in shard_paths(legacy_store):
            assert snapshot_sections(path)["version"] == SNAPSHOT_VERSION
        assert reopened.snapshot_codec == "v1"
        assert reopened.average_rf(trees) == want

    def test_every_byte_truncation_of_v2_snapshots_is_loud(
            self, legacy_store):
        """Cut each migrated shard after every byte: open() must raise
        StoreCorruptError every time, never serve a partial table."""
        BFHStore.open(legacy_store).migrate()
        for path in shard_paths(legacy_store):
            blob = path.read_bytes()
            try:
                for cut in range(len(blob)):
                    path.write_bytes(blob[:cut])
                    with pytest.raises(StoreCorruptError):
                        BFHStore.open(legacy_store)
            finally:
                path.write_bytes(blob)
        # Restored bytes still open clean — the loop damaged nothing.
        assert BFHStore.open(legacy_store).average_rf(
            trees_from_string(NWK)) is not None

    def test_bitflip_in_v2_section_is_loud(self, legacy_store):
        BFHStore.open(legacy_store).migrate()
        path = shard_paths(legacy_store)[0]
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptError):
            BFHStore.open(legacy_store)


class TestInfoReporting:
    def test_info_reports_format_and_projections(self, legacy_store):
        """Satellite (b): version, per-section bytes, projected sizes."""
        store = BFHStore.open(legacy_store)
        info = store.info()
        assert info["snapshot_codec"] == "v1"
        assert info["snapshot_bytes"] == sum(
            p.stat().st_size for p in shard_paths(legacy_store))
        for shard in info["shards"]:
            assert shard["version"] == SNAPSHOT_VERSION
            assert shard["codec"] == "v1"
            assert shard["file_bytes"] > 0
            assert shard["keys_bytes"] + shard["counts_bytes"] >= 0
        projected = info["projected_bytes"]
        assert set(projected) >= {"raw-u64", "succinct-v1"}
        assert projected["succinct-v1"] < projected["raw-u64"]

        store.migrate()
        info = BFHStore.open(legacy_store).info()
        assert info["snapshot_codec"] == "succinct-v1"
        assert all(s["version"] == SNAPSHOT_VERSION_V2
                   for s in info["shards"])

    def test_section_bytes_sum_to_payload(self, legacy_store):
        BFHStore.open(legacy_store).migrate()
        for path in shard_paths(legacy_store):
            section = snapshot_sections(path)
            payload = (section["keys_bytes"] + section["counts_bytes"]
                       + section["weights_bytes"])
            assert payload < section["file_bytes"]
            assert section["entries"] >= 0
