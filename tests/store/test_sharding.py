"""Key-range sharding: boundaries, routing, and the parallel build."""

from __future__ import annotations

import pytest

from repro.core.bfhrf import build_bfh
from repro.core.parallel import fork_available
from repro.store.shards import (
    parallel_build_tables,
    partition_counts,
    shard_boundaries,
    shard_of,
)

from tests.conftest import make_collection


class TestBoundaries:
    def test_single_shard_has_no_boundaries(self):
        assert shard_boundaries([1, 2, 3], 1) == []
        assert shard_boundaries([], 4) == []

    def test_boundaries_balance_entry_counts(self):
        keys = list(range(0, 1000, 7))
        bounds = shard_boundaries(keys, 4)
        assert len(bounds) == 3
        sizes = [len(part) for part in
                 partition_counts({k: 1 for k in keys}, bounds)]
        assert sum(sizes) == len(keys)
        assert max(sizes) - min(sizes) <= len(keys) // 4 + 1

    def test_duplicate_heavy_key_space_collapses_boundaries(self):
        keys = [5] * 10 + [9]
        bounds = shard_boundaries(sorted(keys), 4)
        assert bounds == sorted(set(bounds))  # strictly increasing

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_boundaries([1], 0)


class TestRouting:
    def test_every_key_routes_to_exactly_one_shard(self):
        keys = list(range(50))
        bounds = shard_boundaries(keys, 3)
        parts = partition_counts({k: k + 1 for k in keys}, bounds)
        assert sum(len(p) for p in parts) == 50
        for i, part in enumerate(parts):
            for key in part:
                assert shard_of(key, bounds) == i

    def test_future_keys_route_into_open_ends(self):
        bounds = shard_boundaries(list(range(10, 20)), 2)
        assert shard_of(0, bounds) == 0          # below every stored key
        assert shard_of(10**9, bounds) == 1      # above every stored key


class TestParallelBuild:
    def test_serial_matches_build_bfh(self):
        trees = make_collection(12, 9, seed=31)
        counts, weights, n, total = parallel_build_tables(
            trees, include_trivial=False, weighted=False, n_workers=1)
        fresh = build_bfh(trees)
        assert counts == fresh.counts
        assert (n, total) == (fresh.n_trees, fresh.total)
        assert weights is None

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_build_is_bitwise_identical(self):
        trees = make_collection(14, 17, seed=5)
        serial = parallel_build_tables(trees, include_trivial=False,
                                       weighted=False, n_workers=1)
        forked = parallel_build_tables(trees, include_trivial=False,
                                       weighted=False, n_workers=3)
        assert forked == serial

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_weighted_multisets_match(self):
        trees = make_collection(10, 11, seed=13)
        s_counts, s_weights, s_n, s_total = parallel_build_tables(
            trees, include_trivial=False, weighted=True, n_workers=1)
        f_counts, f_weights, f_n, f_total = parallel_build_tables(
            trees, include_trivial=False, weighted=True, n_workers=3)
        assert f_counts == s_counts
        assert (f_n, f_total) == (s_n, s_total)
        assert {m: sorted(v) for m, v in f_weights.items()} == \
               {m: sorted(v) for m, v in s_weights.items()}

    def test_weight_multiset_sizes_match_frequencies(self):
        trees = make_collection(8, 6, seed=3)
        counts, weights, _n, _total = parallel_build_tables(
            trees, include_trivial=False, weighted=True, n_workers=1)
        assert {m: len(v) for m, v in weights.items()} == counts
