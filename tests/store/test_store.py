"""BFHStore lifecycle: build, add, remove, query, compact, reopen."""

from __future__ import annotations

import pytest

from repro.core.bfhrf import bfhrf_average_rf, build_bfh
from repro.hashing.weighted import WeightedBipartitionHash
from repro.newick import trees_from_string
from repro.store import BFHStore, build_store
from repro.util.errors import StoreCorruptError, StoreError

from tests.conftest import make_collection

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);\n((B,D),(C,E),A);")


@pytest.fixture
def trees():
    return trees_from_string(NWK)


def assert_matches_fresh(store, reference, query):
    """The store contract: answers bitwise-equal to a fresh build."""
    assert store.average_rf(query) == bfhrf_average_rf(query, reference)
    fresh = build_bfh(reference)
    bfh = store.bfh()
    assert bfh.counts == fresh.counts
    assert (bfh.n_trees, bfh.total) == (fresh.n_trees, fresh.total)


class TestLifecycle:
    def test_build_then_query(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees, n_shards=2)
        assert_matches_fresh(store, trees, trees)
        assert len(store) == len(build_bfh(trees))

    def test_create_refuses_existing_store(self, tmp_path, trees):
        build_store(tmp_path / "s", trees)
        with pytest.raises(StoreError, match="already contains"):
            BFHStore.create(tmp_path / "s")

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(StoreError, match="not a BFH store"):
            BFHStore.open(tmp_path / "nope")

    def test_incremental_add_matches_bulk(self, tmp_path, trees):
        bulk = build_store(tmp_path / "bulk", trees)
        inc = BFHStore.create(tmp_path / "inc")
        for tree in trees:
            inc.add_trees([tree])
        assert inc.bfh().counts == bulk.bfh().counts
        assert inc.average_rf(trees) == bulk.average_rf(trees)

    def test_remove_is_exact_inverse(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees)
        store.add_trees(trees[:2])
        store.remove_trees(trees[:2])
        assert_matches_fresh(store, trees, trees)

    def test_duplicate_trees_are_a_multiset(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees)
        store.add_trees([trees[0], trees[0]])
        assert_matches_fresh(store, trees + [trees[0], trees[0]], trees)
        store.remove_trees([trees[0]])
        assert_matches_fresh(store, trees + [trees[0]], trees)

    def test_reopen_preserves_state(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees[:3], n_shards=2)
        store.add_trees(trees[3:])
        store.remove_trees(trees[1:2])
        reference = trees[:1] + trees[2:]
        reopened = BFHStore.open(tmp_path / "s")
        assert_matches_fresh(reopened, reference, trees)
        assert reopened.journal_records == store.journal_records

    def test_compact_empties_journal_and_preserves_answers(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees[:2])
        store.add_trees(trees[2:])
        before = store.average_rf(trees)
        store.compact(3)
        assert store.journal_records == 0
        assert store.average_rf(trees) == before
        reopened = BFHStore.open(tmp_path / "s")
        assert reopened.average_rf(trees) == before
        assert reopened.generation == store.generation

    def test_compact_removes_old_generation_files(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees, n_shards=3)
        gen1 = {p.name for p in (tmp_path / "s").iterdir()}
        store.compact(2)
        gen2 = {p.name for p in (tmp_path / "s").iterdir()}
        assert not {n for n in gen1 if n.startswith(("shard-", "journal-"))} & gen2
        assert len([n for n in gen2 if n.startswith("shard-")]) == 2

    def test_failed_compact_keeps_old_journal_live(self, tmp_path, trees,
                                                   monkeypatch):
        """If the manifest commit fails, the in-memory store must keep
        appending to the journal the on-disk manifest still references —
        not the orphaned new-generation one (regression: deltas written
        after a failed compact were silently lost on reopen)."""
        store = build_store(tmp_path / "s", trees[:2])
        store.add_trees(trees[2:4])
        generation = store.generation
        monkeypatch.setattr(
            store, "_write_manifest",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.undo()
        assert store.generation == generation
        store.add_trees(trees[4:5])  # must land in the referenced journal
        reopened = BFHStore.open(tmp_path / "s")
        assert reopened.n_trees == 5
        assert_matches_fresh(reopened, trees, trees)

    def test_larger_collection_roundtrip(self, tmp_path):
        reference = make_collection(16, 30, seed=1612)
        store = build_store(tmp_path / "s", reference, n_shards=4)
        store.remove_trees(reference[10:20])
        store.compact()
        current = reference[:10] + reference[20:]
        reopened = BFHStore.open(tmp_path / "s")
        assert_matches_fresh(reopened, current, reference)


class TestValidation:
    def test_remove_unknown_tree_rejected_atomically(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees[:2])
        before = store.bfh().counts
        with pytest.raises(StoreError, match="never added"):
            store.remove_trees([trees[0], trees[4]])  # second is foreign
        assert store.bfh().counts == before
        assert store.n_trees == 2

    def test_remove_from_empty_store(self, tmp_path, trees):
        store = BFHStore.create(tmp_path / "s")
        with pytest.raises(StoreError, match="empty"):
            store.remove_trees([trees[0]])

    def test_namespace_conflict_rejected(self, tmp_path):
        a = trees_from_string("((A,B),(C,D),E);")
        b = trees_from_string("((B,A),(C,D),E);")  # B,A swap slots 0/1
        store = build_store(tmp_path / "s", a)
        with pytest.raises(StoreError, match="namespace conflict"):
            store.add_trees(b)

    def test_namespace_extension_is_journaled(self, tmp_path):
        base = trees_from_string("((A,B),(C,D),E);")
        store = build_store(tmp_path / "s", base)
        ns = store.namespace()
        grown = trees_from_string("((A,F),(B,G),(C,D),E);", ns)
        store.add_trees(grown)
        assert store.labels == ["A", "B", "C", "D", "E", "F", "G"]
        reopened = BFHStore.open(tmp_path / "s")
        assert reopened.labels == store.labels
        combined = base + grown
        # Rebuild fresh over the *store's* namespace so masks align.
        want = bfhrf_average_rf(combined, combined)
        assert reopened.average_rf(combined) == want

    def test_failed_add_batch_leaves_store_consistent(self, tmp_path):
        """A conflict on a *later* tree in a batch must not leak earlier
        trees' label extensions into memory (regression: the leaked
        labels made the next add journal records packed for a taxon
        count no extend-ns record announced, bricking the store)."""
        base = trees_from_string("((A,B),(C,D),E);")
        store = build_store(tmp_path / "s", base)
        grown = trees_from_string("((A,F),(B,G),(C,D),E);",
                                  store.namespace())[0]
        bad = trees_from_string("((B,A),(C,D),E);")[0]  # slot 0/1 swap
        with pytest.raises(StoreError, match="namespace conflict"):
            store.add_trees([grown, bad])
        assert store.labels == ["A", "B", "C", "D", "E"]
        assert store.n_trees == 1
        store.add_trees([grown])  # same batch minus the bad tree
        assert store.labels == ["A", "B", "C", "D", "E", "F", "G"]
        reopened = BFHStore.open(tmp_path / "s")
        assert reopened.labels == store.labels
        assert reopened.n_trees == 2

    def test_failed_append_leaves_store_consistent(self, tmp_path, trees,
                                                   monkeypatch):
        store = build_store(tmp_path / "s", trees[:1])
        grown = trees_from_string("((A,F),(B,G),(C,D),E);",
                                  store.namespace())
        monkeypatch.setattr(
            BFHStore, "_append_records",
            lambda self, blobs: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError):
            store.add_trees(grown)
        assert store.labels == ["A", "B", "C", "D", "E"]
        assert store.n_trees == 1
        monkeypatch.undo()
        reopened = BFHStore.open(tmp_path / "s")
        assert reopened.n_trees == 1

    def test_mixed_namespaces_rejected_at_build(self, tmp_path):
        a = trees_from_string("((A,B),(C,D),E);")
        b = trees_from_string("((A,B),(C,D),E);")  # separate namespace object
        with pytest.raises(StoreError, match="share one taxon namespace"):
            build_store(tmp_path / "s", a + b)

    def test_flag_mismatch_between_shard_and_manifest(self, tmp_path, trees):
        import json
        store = build_store(tmp_path / "s", trees)
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        manifest["include_trivial"] = True
        (tmp_path / "s" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptError, match="flags disagree"):
            BFHStore.open(tmp_path / "s")


class TestWeighted:
    def test_multisets_match_fresh_hash(self, tmp_path):
        reference = make_collection(10, 12, seed=7)
        store = build_store(tmp_path / "s", reference, weighted=True,
                            n_shards=2)
        store.remove_trees(reference[3:6])
        store.compact()
        current = reference[:3] + reference[6:]
        fresh = WeightedBipartitionHash.from_trees(current)
        reopened = BFHStore.open(tmp_path / "s")
        got = reopened.weighted_hash()
        assert {m: sorted(v) for m, v in got._weights.items()} == \
               {m: sorted(v) for m, v in fresh._weights.items()}
        assert got.n_trees == fresh.n_trees
        probe = reference[0]
        assert got.average_branch_score(probe) == pytest.approx(
            fresh.average_branch_score(probe), rel=1e-12)

    def test_weighted_hash_requires_weighted_store(self, tmp_path):
        store = build_store(tmp_path / "s",
                            trees_from_string("((A,B),(C,D),E);"))
        with pytest.raises(StoreError, match="weighted=True"):
            store.weighted_hash()

    def test_remove_checks_branch_lengths(self, tmp_path):
        same_topo = trees_from_string(
            "((A:1,B:1):1,(C:1,D:1):1,E:1);\n((A:1,B:1):2,(C:1,D:1):2,E:1);")
        store = build_store(tmp_path / "s", same_topo[:1], weighted=True)
        with pytest.raises(StoreError, match="branch length"):
            store.remove_trees(same_topo[1:])  # same splits, other lengths


class TestInfo:
    def test_info_fields(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees, n_shards=2)
        store.add_trees(trees[:1])
        info = store.info()
        assert info["trees"] == 6
        assert info["snapshot_trees"] == 5
        assert info["journal_records"] == 1
        assert len(info["shards"]) == 2
        assert info["recovered"] is False
        assert info["journal_bytes"] > 26  # header plus the pending record

    def test_shard_snapshots_are_disjoint_and_complete(self, tmp_path, trees):
        store = build_store(tmp_path / "s", trees, n_shards=3)
        seen: dict[int, int] = {}
        for _index, data in store.iter_shard_snapshots():
            assert not (seen.keys() & data.counts.keys())
            seen.update(data.counts)
        assert seen == store.bfh().counts
