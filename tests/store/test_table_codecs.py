"""BipartitionTable codecs: seeded round-trip properties, the packing
regression pin, registry semantics, and loud malformed-input failures.

The exactness bar (ISSUE 9): every codec decode must reproduce the
encoded table key-for-key, count-for-count, and weight-for-weight —
across the 64/128-bit word-width boundaries, splitless/star references,
and weighted multisets — before ``succinct-v1`` is allowed to be the
default write format.
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.bipartitions.encoding import pack_key, unpack_key, words_for_taxa
from repro.core.table import (
    BipartitionTable,
    TableSections,
    codec_by_tag,
    codec_names,
    codecs,
    default_codec_name,
    get_codec,
    masks_to_words,
    probe_order,
    register_codec,
    words_to_masks,
)
from repro.util.errors import StoreCorruptError

BOUNDARY_TAXA = (5, 63, 64, 65, 127, 128, 129)
_SEED = 20260809


def random_table(n_taxa: int, seed: int, *, entries: int = 60,
                 weighted: bool = False) -> BipartitionTable:
    """A seeded table of distinct masks with skewed counts.

    Mask shapes mix dense random bit patterns with small clades (few set
    bits) so both succinct key encodings — delta varints and the sparse
    gap blobs — get exercised in one table.
    """
    rng = random.Random(seed)
    entries = min(entries, 2 ** n_taxa - 2)  # small-n: fewer masks exist
    masks = set()
    while len(masks) < entries:
        if rng.random() < 0.4:
            mask = 0
            for _ in range(rng.randint(1, 4)):
                mask |= 1 << rng.randrange(n_taxa)
        else:
            mask = rng.getrandbits(n_taxa)
        if 0 < mask < (1 << n_taxa) - 1:
            masks.add(mask)
    # Skew: a long frequency-1 tail plus a few heavy hitters, the shape
    # run-length count blocks are built for.
    counts = {m: (rng.randint(2, 40) if rng.random() < 0.2 else 1)
              for m in masks}
    weights = None
    if weighted:
        weights = {m: sorted(round(rng.uniform(0.01, 3.0), 6)
                             for _ in range(c))
                   for m, c in counts.items()}
    return BipartitionTable.from_counts(
        counts, n_taxa=n_taxa, n_trees=rng.randint(1, 50),
        weights=weights)


class TestPackingRegression:
    """Satellite (a): one canonical packing, pinned byte-for-byte.

    ``pack_key`` used to be re-implemented in ``store/format.py`` and
    the array layout separately in ``core/vectorized.py``; these pins
    make any future drift between the shared helpers loud.
    """

    # Golden bytes: the whole key little-endian (least significant byte
    # first, so the least significant *word* comes first).  These
    # literals must never change — they are the on-disk key layout of
    # every v1 and raw-u64 snapshot.
    GOLDEN = [
        (0x01, 1, "0100000000000000"),
        (0x0102, 1, "0201000000000000"),
        ((1 << 64) - 1, 1, "ffffffffffffffff"),
        (1 << 64, 2, "0000000000000000" "0100000000000000"),
        ((1 << 100) | 0x5, 2, "0500000000000000" "0000000010000000"),
        (1 << 128, 3, "0000000000000000"
                      "0000000000000000" "0100000000000000"),
    ]

    @pytest.mark.parametrize("mask,n_words,hex_bytes", GOLDEN)
    def test_pack_key_bytes_are_pinned(self, mask, n_words, hex_bytes):
        assert pack_key(mask, n_words).hex() == hex_bytes
        assert unpack_key(pack_key(mask, n_words)) == mask

    @pytest.mark.parametrize("n_taxa", BOUNDARY_TAXA)
    def test_array_packing_agrees_with_byte_packing(self, n_taxa):
        """masks_to_words rows hold pack_key's words, MSW-first.

        The byte form is whole-key little-endian (LSW first); the array
        form is MSW-first so lexicographic row order equals numeric
        order.  Same words, opposite word order — reversing a row must
        reproduce pack_key's bytes exactly.
        """
        rng = random.Random(_SEED + n_taxa)
        masks = sorted({rng.getrandbits(n_taxa) | 1 for _ in range(50)})
        n_words = words_for_taxa(n_taxa)
        rows = masks_to_words(masks, n_words)
        for mask, row in zip(masks, rows):
            assert struct.pack(f"<{n_words}Q", *row[::-1]) == \
                pack_key(mask, n_words)
        assert words_to_masks(rows) == masks

    def test_probe_order_is_a_permutation_of_numeric_order(self):
        masks = [1, 1 << 64, 3, (1 << 70) | 5, 2]
        rows = masks_to_words(sorted(masks), 2)
        order = probe_order(rows)
        assert sorted(order.tolist()) == list(range(len(masks)))
        assert sorted(words_to_masks(rows[order])) == sorted(masks)


class TestCodecRoundtrip:
    @pytest.mark.parametrize("codec", ["raw-u64", "succinct-v1"])
    @pytest.mark.parametrize("n_taxa", BOUNDARY_TAXA)
    def test_seeded_tables_roundtrip_exactly(self, codec, n_taxa):
        spec = get_codec(codec)
        for trial in range(3):
            table = random_table(n_taxa, _SEED + 31 * trial + n_taxa)
            sections = spec.encode(table)
            decoded = spec.decode(
                sections, n_taxa=n_taxa, entries=len(table),
                weighted=False, include_trivial=table.include_trivial,
                n_trees=table.n_trees, total=table.total)
            assert decoded.same_contents(table), \
                f"{codec} drifted at n_taxa={n_taxa} trial={trial}"

    @pytest.mark.parametrize("codec", ["raw-u64", "succinct-v1"])
    @pytest.mark.parametrize("n_taxa", [65, 129])
    def test_weighted_multisets_roundtrip_exactly(self, codec, n_taxa):
        spec = get_codec(codec)
        table = random_table(n_taxa, _SEED, weighted=True)
        sections = spec.encode(table)
        decoded = spec.decode(
            sections, n_taxa=n_taxa, entries=len(table), weighted=True,
            include_trivial=False, n_trees=table.n_trees, total=table.total)
        assert decoded.same_contents(table)
        assert decoded.weights == table.weights  # floats exact, order kept

    @pytest.mark.parametrize("codec", ["raw-u64", "succinct-v1"])
    def test_splitless_star_reference_roundtrips(self, codec):
        """A star tree has no non-trivial splits: the empty table."""
        spec = get_codec(codec)
        table = BipartitionTable.from_counts({}, n_taxa=8, n_trees=3)
        sections = spec.encode(table)
        assert sections.nbytes == 0
        decoded = spec.decode(sections, n_taxa=8, entries=0, weighted=False,
                              include_trivial=False, n_trees=3, total=0)
        assert decoded.same_contents(table)

    @pytest.mark.parametrize("n_taxa", [64, 65, 128, 129])
    def test_extreme_masks_near_word_edges(self, n_taxa):
        """Masks hugging the width limit stress both key encodings."""
        counts = {1: 2, (1 << (n_taxa - 1)) | 1: 1, (1 << n_taxa) - 2: 7,
                  ((1 << n_taxa) - 1) ^ (1 << (n_taxa // 2)): 7}
        table = BipartitionTable.from_counts(counts, n_taxa=n_taxa, n_trees=4)
        for spec in codecs():
            decoded = spec.decode(
                spec.encode(table), n_taxa=n_taxa, entries=len(table),
                weighted=False, include_trivial=False, n_trees=4,
                total=table.total)
            assert decoded.same_contents(table), spec.name

    def test_succinct_is_smaller_on_realistic_skew(self):
        """The compression claim at unit scale: ≥2x on a 129-taxon table
        with a frequency-1 tail (the acceptance-bar ≥3x is measured on
        the store_format benchmark workload)."""
        table = random_table(129, _SEED, entries=400)
        raw = get_codec("raw-u64").estimated_bytes(table)
        succinct = get_codec("succinct-v1").estimated_bytes(table)
        assert succinct * 2 <= raw, (raw, succinct)

    @pytest.mark.parametrize("codec", ["raw-u64", "succinct-v1"])
    def test_estimator_matches_actual_encoding(self, codec):
        spec = get_codec(codec)
        table = random_table(65, _SEED)
        assert spec.estimated_bytes(table) == spec.encode(table).nbytes


class TestRegistry:
    def test_builtins_registered_with_permanent_tags(self):
        assert get_codec("raw-u64").tag == 1
        assert get_codec("succinct-v1").tag == 2
        assert codec_by_tag(1).name == "raw-u64"
        assert codec_by_tag(2).name == "succinct-v1"
        assert set(codec_names()) >= {"raw-u64", "succinct-v1"}

    def test_succinct_is_the_default_write_format(self):
        assert default_codec_name() == "succinct-v1"

    def test_unknown_name_and_tag_are_loud(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("lz4")
        with pytest.raises(StoreCorruptError, match="unknown codec tag"):
            codec_by_tag(999)

    def test_tag_collision_with_different_name_rejected(self):
        spec = get_codec("raw-u64")
        with pytest.raises(ValueError, match="already taken"):
            register_codec("imposter", tag=spec.tag, encoder=spec.encoder,
                           decoder=spec.decoder, estimator=spec.estimator,
                           summary="collides")

    def test_unweighted_only_codec_rejects_weighted_tables(self):
        spec = get_codec("raw-u64")
        try:
            narrow = register_codec(
                "narrow-test", tag=60000, encoder=spec.encoder,
                decoder=spec.decoder, estimator=spec.estimator,
                summary="test-only", supports_weighted=False)
            table = random_table(65, _SEED, weighted=True)
            with pytest.raises(ValueError, match="does not support weighted"):
                narrow.encode(table)
        finally:
            from repro.core import table as table_mod
            table_mod._REGISTRY.pop("narrow-test", None)


class TestMalformedSuccinctSections:
    """Every malformed byte pattern must raise StoreCorruptError —
    the codec layer keeps the store's never-silently-wrong contract."""

    def _decode(self, sections, entries):
        return get_codec("succinct-v1").decode(
            sections, n_taxa=65, entries=entries, weighted=False,
            include_trivial=False, n_trees=1, total=entries)

    def _sections(self, n_taxa=65, entries=20):
        table = random_table(n_taxa, _SEED, entries=entries)
        return get_codec("succinct-v1").encode(table), len(table)

    def test_truncated_keys(self):
        sections, entries = self._sections()
        for cut in range(len(sections.keys)):
            bad = TableSections(keys=sections.keys[:cut],
                                counts=sections.counts, weights=b"")
            with pytest.raises(StoreCorruptError):
                self._decode(bad, entries)

    def test_truncated_counts(self):
        sections, entries = self._sections()
        for cut in range(len(sections.counts)):
            bad = TableSections(keys=sections.keys,
                                counts=sections.counts[:cut], weights=b"")
            with pytest.raises(StoreCorruptError):
                self._decode(bad, entries)

    def test_trailing_bytes_rejected(self):
        sections, entries = self._sections()
        with pytest.raises(StoreCorruptError, match="trailing"):
            self._decode(TableSections(keys=sections.keys + b"\x00",
                                       counts=sections.counts, weights=b""),
                         entries)
        with pytest.raises(StoreCorruptError, match="trailing"):
            self._decode(TableSections(keys=sections.keys,
                                       counts=sections.counts + b"\x01\x01",
                                       weights=b""),
                         entries)

    def test_unknown_key_tag_rejected(self):
        sections, entries = self._sections()
        bad_keys = b"\x7f" + sections.keys[1:]
        with pytest.raises(StoreCorruptError, match="unknown tag"):
            self._decode(TableSections(keys=bad_keys,
                                       counts=sections.counts, weights=b""),
                         entries)

    def test_non_ascending_delta_rejected(self):
        # A zero delta re-encodes the previous key: not strictly ascending.
        keys = b"\x00\x05" + b"\x00\x00"
        counts = b"\x01\x02"  # value 1, run 2
        with pytest.raises(StoreCorruptError, match="ascending"):
            self._decode(TableSections(keys=keys, counts=counts, weights=b""),
                         2)

    def test_zero_count_run_rejected(self):
        keys = b"\x00\x05"
        with pytest.raises(StoreCorruptError, match="invalid run"):
            self._decode(TableSections(keys=keys, counts=b"\x00\x01",
                                       weights=b""), 1)

    def test_count_run_overrun_rejected(self):
        keys = b"\x00\x05"
        with pytest.raises(StoreCorruptError, match="invalid run"):
            self._decode(TableSections(keys=keys, counts=b"\x01\x05",
                                       weights=b""), 1)

    def test_weight_section_on_unweighted_table_rejected(self):
        sections, entries = self._sections()
        bad = TableSections(keys=sections.keys, counts=sections.counts,
                            weights=b"\x00" * 8)
        with pytest.raises(StoreCorruptError, match="weight"):
            self._decode(bad, entries)


class TestTableViews:
    def test_probe_and_numeric_orders_hold_the_same_multiset(self):
        table = random_table(129, _SEED)
        assert sorted(table.masks()) == table.sorted_masks()
        assert dict(table.sorted_items()) == table.to_counts()

    def test_vectorized_adoption_is_zero_copy(self):
        table = random_table(64, _SEED)
        vbfh = table.vectorized()
        assert vbfh.keys is table.keys
        assert vbfh.freqs is table.counts

    def test_width_mismatch_rejected(self):
        keys = masks_to_words([1, 2], 2)
        counts = np.array([1, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="does not match"):
            BipartitionTable(keys, counts, n_taxa=8, n_trees=1, total=2)

    def test_overflowing_mask_never_truncates_silently(self):
        with pytest.raises(ValueError, match="does not fit"):
            masks_to_words([1 << 64], 1)

    def test_masks_above_declared_taxa_still_roundtrip(self):
        """Partial-coverage cases declare fewer taxa than the namespace
        holds bits for; succinct must fall back to delta keys, not raise
        (the codec-roundtrip oracle found this)."""
        table = BipartitionTable.from_counts(
            {0x45: 2, 0x201: 1}, n_taxa=5, n_trees=2)
        for spec in codecs():
            decoded = spec.decode(
                spec.encode(table), n_taxa=5, entries=2, weighted=False,
                include_trivial=False, n_trees=2, total=table.total)
            assert decoded.same_contents(table), spec.name
