"""Journal tailing: the long-running-reader path under ``bfhrf serve``.

One process holds a store open while another appends to (or compacts
away) its journal; ``tail_journal`` must converge the reader to the
writer's state without a reopen — bitwise, torn tails included.
"""

from __future__ import annotations

import pytest

from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import trees_from_string
from repro.store import BFHStore, build_store
from repro.store.format import JOURNAL_HEADER_SIZE, read_journal
from repro.util.errors import StoreCorruptError, StoreError

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);\n((B,D),(C,E),A);")


@pytest.fixture
def trees():
    return trees_from_string(NWK)


@pytest.fixture
def two_handles(tmp_path, trees):
    """(reader, writer): two opens of one store, like daemon + CLI."""
    build_store(tmp_path / "s", trees[:3])
    reader = BFHStore.open(tmp_path / "s")
    writer = BFHStore.open(tmp_path / "s")
    return reader, writer


def assert_converged(reader, reference, query):
    assert reader.average_rf(query) == bfhrf_average_rf(query, reference)
    assert reader.n_trees == len(reference)


class TestTailJournal:
    def test_external_add_applies_in_place(self, two_handles, trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:])
        assert reader.n_trees == 3          # not yet visible
        assert reader.tail_journal() == len(trees) - 3
        assert_converged(reader, trees, trees)

    def test_external_remove_applies_in_place(self, two_handles, trees):
        reader, writer = two_handles
        writer.remove_trees(trees[:1])
        assert reader.tail_journal() == 1
        assert_converged(reader, trees[1:3], trees)

    def test_tail_is_idempotent_when_nothing_changed(self, two_handles):
        reader, _ = two_handles
        assert reader.tail_journal() == 0
        assert reader.tail_journal() == 0

    def test_repeated_tails_track_a_chatty_writer(self, two_handles, trees):
        reader, writer = two_handles
        for tree in trees[3:]:
            writer.add_trees([tree])
            assert reader.tail_journal() == 1
        assert_converged(reader, trees, trees)

    def test_namespace_extension_tails_through(self, two_handles, trees):
        reader, writer = two_handles
        wider = trees_from_string("((A,F),(B,C),(D,E));",
                                  writer.namespace())
        writer.add_trees(wider)
        # Two records: the namespace extension, then the add itself.
        assert reader.tail_journal() == 2
        assert "F" in reader.labels
        reference = trees[:3] + wider
        query = trees_from_string(NWK, reader.namespace())
        assert_converged(reader, reference, query)

    def test_tail_after_external_compaction_demands_reopen(self, two_handles,
                                                           trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:])
        writer.compact()
        with pytest.raises(StoreError, match="compacted by another process"):
            reader.tail_journal()
        reopened = BFHStore.open(reader.path)
        assert_converged(reopened, trees, trees)


class TestTornTail:
    def test_partial_record_is_left_for_later(self, two_handles, trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:4])
        journal = reader._journal_file
        blob = journal.read_bytes()
        # A writer caught mid-append: everything but the last byte.
        journal.write_bytes(blob[:-1])
        assert reader.tail_journal() == 0       # torn tail, not corruption
        journal.write_bytes(blob)               # the writer finishes
        assert reader.tail_journal() == 1
        assert_converged(reader, trees[:4], trees)

    def test_lag_gauge_tracks_unapplied_bytes(self, two_handles, trees):
        reader, writer = two_handles
        assert reader.journal_lag_bytes() == 0
        writer.add_trees(trees[3:])
        assert reader.journal_lag_bytes() > 0
        reader.tail_journal()
        assert reader.journal_lag_bytes() == 0

    def test_lag_is_zero_when_journal_is_gone(self, two_handles, trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:])
        writer.compact()
        assert reader.journal_lag_bytes() == 0


class TestReadGeneration:
    def test_matches_open_handle(self, two_handles):
        reader, _ = two_handles
        assert BFHStore.read_generation(reader.path) == reader.generation

    def test_bumps_on_compaction(self, two_handles, trees):
        reader, writer = two_handles
        before = BFHStore.read_generation(reader.path)
        writer.add_trees(trees[3:])
        writer.compact()
        assert BFHStore.read_generation(reader.path) > before

    def test_missing_store(self, tmp_path):
        with pytest.raises(StoreError, match="not a BFH store"):
            BFHStore.read_generation(tmp_path / "nope")

    def test_garbage_manifest(self, two_handles):
        reader, _ = two_handles
        (reader.path / "manifest.json").write_text("not json at all")
        with pytest.raises(StoreCorruptError, match="cannot read generation"):
            BFHStore.read_generation(reader.path)


class TestReadJournalOffsets:
    def test_start_inside_header_is_refused(self, two_handles):
        reader, _ = two_handles
        with pytest.raises(StoreCorruptError, match="inside the header"):
            read_journal(reader._journal_file, start=JOURNAL_HEADER_SIZE - 1)

    def test_start_past_end_means_truncation(self, two_handles, trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:])
        size = reader._journal_file.stat().st_size
        with pytest.raises(StoreCorruptError, match="append-only contract"):
            read_journal(reader._journal_file, start=size + 1)

    def test_start_at_exact_end_reads_nothing(self, two_handles):
        reader, _ = two_handles
        size = reader._journal_file.stat().st_size
        records, good_offset, torn = read_journal(reader._journal_file,
                                                  start=size)
        assert (records, good_offset, torn) == ([], size, False)


class TestInfoSurfacesTailState:
    def test_tail_fields_in_info(self, two_handles, trees):
        reader, writer = two_handles
        writer.add_trees(trees[3:])
        info = reader.info()
        assert info["journal_lag_bytes"] > 0
        reader.tail_journal()
        info = reader.info()
        assert info["journal_lag_bytes"] == 0
        assert info["journal_tail_records"] == len(trees) - 3
        assert info["journal_tail_bytes"] > 0
