"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.newick import read_newick_file, trees_from_string, write_newick_file


@pytest.fixture
def quartet_file(tmp_path):
    path = tmp_path / "trees.nwk"
    path.write_text("((A,B),(C,D));\n((A,C),(B,D));\n((A,B),(C,D));\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestAvgRF:
    def test_basic(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        values = [float(line.split("\t")[1]) for line in out]
        assert values == pytest.approx([2 / 3, 4 / 3, 2 / 3])

    @pytest.mark.parametrize("method", ["ds", "dsmp", "hashrf", "bfhrf"])
    def test_all_methods(self, quartet_file, capsys, method):
        assert main(["avg-rf", quartet_file, "--method", method]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3

    def test_reference_file(self, quartet_file, tmp_path, capsys):
        ref = tmp_path / "ref.nwk"
        ref.write_text("((A,B),(C,D));\n")
        assert main(["avg-rf", quartet_file, "-r", str(ref)]) == 0
        values = [float(l.split("\t")[1])
                  for l in capsys.readouterr().out.strip().splitlines()]
        assert values == [0.0, 2.0, 0.0]

    def test_normalized(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file, "--normalized"]) == 0
        values = [float(l.split("\t")[1])
                  for l in capsys.readouterr().out.strip().splitlines()]
        assert all(0 <= v <= 1 for v in values)

    def test_split_size_filter(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file, "--min-split-size", "3"]) == 0
        values = [float(l.split("\t")[1])
                  for l in capsys.readouterr().out.strip().splitlines()]
        # n=4: no split has smaller side >= 3, so all distances are 0.
        assert values == [0.0, 0.0, 0.0]

    def test_workers(self, quartet_file, capsys):
        assert main(["avg-rf", quartet_file, "--workers", "2"]) == 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "spawn"])
    def test_executor_flag(self, quartet_file, capsys, executor):
        assert main(["avg-rf", quartet_file, "--workers", "2",
                     "--executor", executor]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[1]) for line in out]
        assert values == pytest.approx([2 / 3, 4 / 3, 2 / 3])

    def test_executor_flag_resets_after_run(self, quartet_file, capsys,
                                            monkeypatch):
        from repro.runtime import EXECUTOR_ENV, default_executor_name

        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        main(["avg-rf", quartet_file, "--executor", "thread"])
        capsys.readouterr()
        assert default_executor_name() == "auto"

    def test_unknown_executor_rejected(self, quartet_file, capsys):
        with pytest.raises(SystemExit):
            main(["avg-rf", quartet_file, "--executor", "mpi"])

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.nwk"
        bad.write_text("((A,B),(C,;\n")
        assert main(["avg-rf", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_timing_on_stderr(self, quartet_file, capsys):
        main(["avg-rf", quartet_file])
        assert "wall time" in capsys.readouterr().err


class TestMatrix:
    def test_stdout(self, quartet_file, capsys):
        assert main(["matrix", quartet_file, "--method", "naive"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()
        assert len(rows) == 3
        assert rows[0].split(",") == ["0", "2", "0"]

    def test_csv_output(self, quartet_file, tmp_path, capsys):
        out = tmp_path / "m.csv"
        assert main(["matrix", quartet_file, "-o", str(out)]) == 0
        assert out.read_text().strip().splitlines()[0] == "0,2,0"


class TestConsensus:
    def test_majority(self, quartet_file, capsys):
        assert main(["consensus", quartet_file]) == 0
        newick = capsys.readouterr().out.strip()
        trees = trees_from_string(newick)
        assert trees[0].n_leaves == 4

    def test_strict(self, quartet_file, capsys):
        assert main(["consensus", quartet_file, "--consensus-method", "strict"]) == 0


class TestSimulate:
    def test_variable_trees(self, tmp_path, capsys):
        out = tmp_path / "sim.nwk"
        assert main(["simulate", "--family", "variable-trees", "--trees", "6",
                     "-o", str(out), "--seed", "3"]) == 0
        trees = read_newick_file(out)
        assert len(trees) == 6
        assert trees[0].n_leaves == 100

    def test_variable_taxa(self, tmp_path):
        out = tmp_path / "sim.nwk"
        assert main(["simulate", "--family", "variable-taxa", "--taxa", "12",
                     "--trees", "4", "-o", str(out), "--seed", "3"]) == 0
        trees = read_newick_file(out)
        assert trees[0].n_leaves == 12

    def test_insect_unweighted(self, tmp_path):
        out = tmp_path / "sim.nwk"
        assert main(["simulate", "--family", "insect", "--trees", "2",
                     "-o", str(out), "--seed", "3"]) == 0
        assert ":" not in out.read_text()


class TestBest:
    def test_best(self, quartet_file, tmp_path, capsys):
        cand = tmp_path / "cand.nwk"
        cand.write_text("((A,D),(B,C));\n((A,B),(C,D));\n")
        assert main(["best", str(cand), "-r", quartet_file]) == 0
        out = capsys.readouterr().out
        assert "index 1" in out
