"""Tests for the analysis CLI subcommands (annotate / stats / complete)."""

import pytest

from repro.cli import main
from repro.newick import trees_from_string


@pytest.fixture
def collection_file(tmp_path):
    path = tmp_path / "collection.nwk"
    path.write_text(
        "((A,B),(C,D));\n((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));\n")
    return str(path)


class TestAnnotate:
    def test_labels_written(self, collection_file, tmp_path, capsys):
        tree = tmp_path / "summary.nwk"
        tree.write_text("((A,B),(C,D));\n")
        assert main(["annotate", str(tree), "-r", collection_file]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "((A,B)75,(C,D)75);"

    def test_multiple_trees_annotated(self, collection_file, tmp_path, capsys):
        tree = tmp_path / "summary.nwk"
        tree.write_text("((A,B),(C,D));\n((A,C),(B,D));\n")
        assert main(["annotate", str(tree), "-r", collection_file]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "25" in lines[1]


class TestStats:
    def test_report_fields(self, collection_file, capsys):
        assert main(["stats", collection_file]) == 0
        out = capsys.readouterr().out
        assert "trees:" in out and "4" in out
        assert "unique bipartitions:" in out
        assert "mean pairwise RF:" in out
        assert "support spectrum" in out

    def test_mean_pairwise_value(self, collection_file, capsys):
        main(["stats", collection_file])
        out = capsys.readouterr().out
        # 3 identical + 1 conflicting: pairs (3 zero) + 3 pairs at RF 2
        # -> sum 6 over 6 pairs -> mean 1.0
        assert "mean pairwise RF:            1.0000" in out

    def test_bins_flag(self, collection_file, capsys):
        assert main(["stats", collection_file, "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") >= 1


class TestComplete:
    def test_completes_and_scores(self, collection_file, tmp_path, capsys):
        partial = tmp_path / "partial.nwk"
        partial.write_text("((A,B),C);\n")
        assert main(["complete", str(partial), "-r", collection_file]) == 0
        captured = capsys.readouterr()
        trees = trees_from_string(captured.out.strip())
        assert sorted(trees[0].leaf_labels()) == ["A", "B", "C", "D"]
        assert "average RF of completed tree" in captured.err

    def test_recovers_majority_topology(self, collection_file, tmp_path, capsys):
        partial = tmp_path / "partial.nwk"
        partial.write_text("((A,B),C);\n")
        main(["complete", str(partial), "-r", collection_file])
        newick = capsys.readouterr().out.strip()
        from repro.bipartitions import bipartition_masks

        tree = trees_from_string(newick)[0]
        assert bipartition_masks(tree) == {0b0011}
