"""Tests for the extended CLI subcommands (asdsf / supertree / topologies / dist)."""

import pytest

from repro.cli import main
from repro.newick import trees_from_string


@pytest.fixture
def run_files(tmp_path):
    a = tmp_path / "run1.nwk"
    b = tmp_path / "run2.nwk"
    a.write_text("((A,B),(C,D));\n((A,B),(C,D));\n")
    b.write_text("((A,B),(C,D));\n((A,C),(B,D));\n")
    return str(a), str(b)


class TestAsdsf:
    def test_identical_runs(self, run_files, capsys):
        a, _ = run_files
        assert main(["asdsf", a, a]) == 0
        assert float(capsys.readouterr().out.strip()) == 0.0

    def test_differing_runs(self, run_files, capsys):
        a, b = run_files
        assert main(["asdsf", a, b]) == 0
        value = float(capsys.readouterr().out.strip())
        assert value > 0.0

    def test_min_support_flag(self, run_files, capsys):
        a, b = run_files
        assert main(["asdsf", a, b, "--min-support", "0.4"]) == 0


class TestSupertree:
    def test_assembles_fragments(self, tmp_path, capsys):
        f1 = tmp_path / "s1.nwk"
        f2 = tmp_path / "s2.nwk"
        f1.write_text("((A,B),(C,D));\n")
        f2.write_text("((A,B),(D,E));\n")
        assert main(["supertree", str(f1), str(f2)]) == 0
        captured = capsys.readouterr()
        trees = trees_from_string(captured.out.strip())
        assert sorted(trees[0].leaf_labels()) == ["A", "B", "C", "D", "E"]
        assert "total restricted RF" in captured.err

    def test_ascii_output(self, tmp_path, capsys):
        f1 = tmp_path / "s1.nwk"
        f1.write_text("((A,B),(C,D));\n")
        assert main(["supertree", str(f1), "--ascii"]) == 0
        assert "─" in capsys.readouterr().out


class TestTopologies:
    def test_frequency_listing(self, tmp_path, capsys):
        f = tmp_path / "t.nwk"
        f.write_text("((A,B),(C,D));\n((B,A),(D,C));\n((A,C),(B,D));\n")
        assert main(["topologies", str(f)]) == 0
        captured = capsys.readouterr()
        assert "[2/3]" in captured.out
        assert "[1/3]" in captured.out
        assert "2 distinct topologies" in captured.err

    def test_credible_set(self, tmp_path, capsys):
        f = tmp_path / "t.nwk"
        f.write_text("((A,B),(C,D));\n" * 9 + "((A,C),(B,D));\n")
        assert main(["topologies", str(f), "--credible", "0.8"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("[") == 1
        assert "[0.9000]" in captured.out


class TestDist:
    @pytest.mark.parametrize("metric,expected", [
        ("rf", "2"), ("matching", "2"), ("quartet", "1"),
    ])
    def test_metrics(self, tmp_path, capsys, metric, expected):
        f = tmp_path / "pair.nwk"
        f.write_text("((A,B),(C,D));\n((A,C),(B,D));\n")
        assert main(["dist", str(f), "--metric", metric]) == 0
        assert capsys.readouterr().out.strip() == expected

    def test_needs_two_trees(self, tmp_path, capsys):
        f = tmp_path / "one.nwk"
        f.write_text("((A,B),(C,D));\n")
        assert main(["dist", str(f)]) == 2


class TestSimulateFormats:
    def test_nexus_output(self, tmp_path, capsys):
        out = tmp_path / "sim.nex"
        assert main(["simulate", "--family", "variable-taxa", "--taxa", "8",
                     "--trees", "3", "-o", str(out), "--seed", "1",
                     "--format", "nexus"]) == 0
        text = out.read_text()
        assert text.startswith("#NEXUS")
        from repro.newick.nexus import read_nexus_trees

        assert len(read_nexus_trees(str(out))) == 3

    def test_gzipped_newick_output(self, tmp_path):
        out = tmp_path / "sim.nwk.gz"
        assert main(["simulate", "--family", "variable-taxa", "--taxa", "8",
                     "--trees", "3", "-o", str(out), "--seed", "1"]) == 0
        import gzip

        with gzip.open(out, "rt") as fh:
            assert fh.read().count(";") == 3

    def test_gzipped_input_through_avg_rf(self, tmp_path, capsys):
        out = tmp_path / "sim.nwk.gz"
        main(["simulate", "--family", "variable-taxa", "--taxa", "8",
              "--trees", "4", "-o", str(out), "--seed", "2"])
        assert main(["avg-rf", str(out)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
