"""The ``bfhrf selfcheck`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main


def test_selfcheck_passes(capsys):
    assert main(["selfcheck", "--seed", "42", "--rounds", "5", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "selfcheck PASS" in out
    assert "implementations exercised" in out
    for name in ("naive", "day", "hashrf", "bfhrf", "vectorized"):
        assert name in out


def test_selfcheck_fault_fails_and_writes_artifacts(tmp_path, capsys):
    rc = main(["selfcheck", "--seed", "42", "--rounds", "3", "--quiet",
               "--inject-fault", "bfh-count",
               "--artifacts", str(tmp_path / "art")])
    assert rc == 1
    assert "selfcheck FAIL" in capsys.readouterr().out
    artifacts = list((tmp_path / "art").iterdir())
    assert artifacts
    assert (artifacts[0] / "manifest.json").exists()
    assert (artifacts[0] / "query.newick").exists()


def test_selfcheck_replay(tmp_path, capsys):
    main(["selfcheck", "--seed", "42", "--rounds", "3", "--quiet",
          "--inject-fault", "bfh-count", "--artifacts", str(tmp_path / "art")])
    capsys.readouterr()
    artifact = next((tmp_path / "art").iterdir())
    # The fault is gone, so the reproducer now passes.
    assert main(["selfcheck", "--quiet", "--replay", str(artifact)]) == 0
    assert "bug fixed" in capsys.readouterr().out


def test_selfcheck_metrics_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(["selfcheck", "--seed", "1", "--rounds", "4", "--quiet",
               "--metrics-out", str(out)])
    assert rc == 0
    capsys.readouterr()
    report = json.loads(out.read_text())
    counters = report["metrics"]["counters"]
    assert counters["selfcheck.rounds"] == 4
    assert counters["selfcheck.checks"] > 0
    assert "selfcheck.failures" not in counters or counters["selfcheck.failures"] == 0
