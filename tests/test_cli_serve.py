"""The ``bfhrf serve`` verb family: daemon in a thread, verbs in-process.

Mirrors the CI smoke test but assertable: start, query (output identical
to ``store query``), stats, stop — plus the argv error paths.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.serve import ServeConfig, ServeDaemon

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);\n")


@pytest.fixture
def trees_file(tmp_path):
    path = tmp_path / "trees.nwk"
    path.write_text(NWK)
    return str(path)


@pytest.fixture
def store_dir(tmp_path, trees_file):
    path = tmp_path / "store"
    assert main(["store", "build", str(path), "-r", trees_file,
                 "--shards", "2", "--quiet"]) == 0
    return str(path)


@pytest.fixture
def daemon(tmp_path, store_dir):
    config = ServeConfig(socket_path=str(tmp_path / "serve.sock"),
                         tail_interval_s=0.05)
    daemon = ServeDaemon(store_dir, config)
    handle = daemon.run_in_thread()
    try:
        yield daemon
    finally:
        try:
            handle.stop()
        except Exception:
            pass  # a stop-verb test already shut it down


class TestServeVerbs:
    def test_query_output_identical_to_store_query(self, daemon, store_dir,
                                                   trees_file, capsys):
        assert main(["serve", "query", daemon.config.socket_path,
                     trees_file, "--quiet"]) == 0
        via_daemon = capsys.readouterr().out
        assert main(["store", "query", store_dir, trees_file,
                     "--quiet"]) == 0
        via_store = capsys.readouterr().out
        assert via_daemon == via_store
        assert len(via_daemon.strip().splitlines()) == 4

    def test_stats_prints_json(self, daemon, capsys):
        assert main(["serve", "stats", daemon.config.socket_path,
                     "--quiet"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["server"] == "bfhrf-serve"
        assert "metrics" in stats and "store" in stats

    def test_stop_drains_the_daemon(self, daemon, capsys):
        handle_thread = [t for t in threading.enumerate()
                         if t.name == "bfhrf-serve"]
        assert handle_thread, "daemon thread not running"
        assert main(["serve", "stop", daemon.config.socket_path,
                     "--quiet"]) == 0
        handle_thread[0].join(timeout=15)
        assert not handle_thread[0].is_alive()

    def test_start_blocks_then_stop_unblocks(self, tmp_path, store_dir,
                                             capsys):
        socket_path = str(tmp_path / "cli-start.sock")
        rc: list[int] = []

        def _start() -> None:
            rc.append(main(["serve", "start", store_dir,
                            "--addr", f"unix://{socket_path}",
                            "--tail-interval", "0.05", "--quiet"]))

        thread = threading.Thread(target=_start, daemon=True)
        thread.start()
        assert main(["serve", "stop", socket_path, "--retries", "20",
                     "--quiet"]) == 0
        thread.join(timeout=15)
        assert rc == [0]

    def test_query_against_dead_socket_fails_cleanly(self, tmp_path,
                                                     trees_file, capsys):
        assert main(["serve", "query", str(tmp_path / "dead.sock"),
                     trees_file, "--quiet"]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_start_on_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["serve", "start", str(tmp_path / "no-store"),
                     "--quiet"]) == 2
        assert "not a BFH store" in capsys.readouterr().err


class TestEndpointAddressing:
    """The --addr surface: URL forms, TCP listeners, and the deprecated
    --socket alias mapped through the same Endpoint parser."""

    def test_query_via_addr_flag_matches_positional(self, daemon, trees_file,
                                                    capsys):
        assert main(["serve", "query", daemon.config.socket_path,
                     trees_file, "--quiet"]) == 0
        positional = capsys.readouterr().out
        assert main(["serve", "query", "--addr",
                     f"unix://{daemon.config.socket_path}", trees_file,
                     "--quiet"]) == 0
        assert capsys.readouterr().out == positional

    def test_tcp_daemon_query_identical_to_store_query(self, tmp_path,
                                                       store_dir, trees_file,
                                                       capsys):
        from repro.serve import ServeConfig, ServeDaemon

        config = ServeConfig(socket_path=str(tmp_path / "tcp-test.sock"),
                             endpoints=["tcp://127.0.0.1:0"],
                             tail_interval_s=0.05)
        daemon = ServeDaemon(store_dir, config)
        handle = daemon.run_in_thread()
        try:
            tcp_addr = str(daemon.bound_endpoints[1])
            assert main(["serve", "query", tcp_addr, trees_file,
                         "--quiet"]) == 0
            via_tcp = capsys.readouterr().out
        finally:
            handle.stop()
        assert main(["store", "query", store_dir, trees_file,
                     "--quiet"]) == 0
        assert via_tcp == capsys.readouterr().out

    def test_socket_flag_is_deprecated_but_works(self, daemon, capsys):
        with pytest.warns(DeprecationWarning, match="--addr"):
            assert main(["serve", "stats", "--socket",
                         daemon.config.socket_path, "--quiet"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["server"] == "bfhrf-serve"

    def test_start_socket_flag_is_deprecated(self, tmp_path, store_dir):
        import threading

        socket_path = str(tmp_path / "dep-start.sock")
        rc: list[int] = []

        def _start() -> None:
            with pytest.warns(DeprecationWarning, match="--addr"):
                rc.append(main(["serve", "start", store_dir,
                                "--socket", socket_path,
                                "--tail-interval", "0.05", "--quiet"]))

        thread = threading.Thread(target=_start, daemon=True)
        thread.start()
        assert main(["serve", "stop", socket_path, "--retries", "20",
                     "--quiet"]) == 0
        thread.join(timeout=15)
        assert rc == [0]

    def test_missing_address_fails_cleanly(self, capsys):
        assert main(["serve", "stats", "--quiet"]) == 2
        assert "needs a daemon address" in capsys.readouterr().err

    def test_bad_scheme_fails_cleanly(self, trees_file, capsys):
        assert main(["serve", "query", "http://nope:80", trees_file,
                     "--quiet"]) == 2
        assert "unsupported endpoint scheme" in capsys.readouterr().err
