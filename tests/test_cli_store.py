"""The ``bfhrf store`` verb family end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.bfhrf import bfhrf_average_rf
from repro.newick import read_newick_file
from repro.trees.taxon import TaxonNamespace

NWK = ("((A,B),(C,D),E);\n((A,C),(B,D),E);\n"
       "((A,E),(B,C),D);\n((A,B),(C,E),D);\n")


@pytest.fixture
def trees_file(tmp_path):
    path = tmp_path / "trees.nwk"
    path.write_text(NWK)
    return str(path)


@pytest.fixture
def store_dir(tmp_path, trees_file):
    path = tmp_path / "store"
    assert main(["store", "build", str(path), "-r", trees_file,
                 "--shards", "2", "--quiet"]) == 0
    return str(path)


class TestBuildAndInfo:
    def test_build_then_info(self, store_dir, capsys):
        assert main(["store", "info", store_dir, "--quiet"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["trees"] == 4
        assert len(info["shards"]) == 2
        assert info["journal_records"] == 0

    def test_build_refuses_overwrite(self, store_dir, trees_file, capsys):
        assert main(["store", "build", store_dir, "-r", trees_file,
                     "--quiet"]) == 2
        assert "already contains" in capsys.readouterr().err

    def test_info_on_non_store(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "no"), "--quiet"]) == 2
        assert "not a BFH store" in capsys.readouterr().err


class TestQueryMatchesAvgRf:
    def test_warm_query_equals_direct_computation(self, store_dir, trees_file,
                                                  capsys):
        assert main(["store", "query", store_dir, trees_file, "--quiet"]) == 0
        got = [float(line.split("\t")[1])
               for line in capsys.readouterr().out.strip().splitlines()]
        trees = read_newick_file(trees_file, TaxonNamespace())
        assert got == pytest.approx(bfhrf_average_rf(trees, trees), abs=5e-7)

    def test_add_remove_cycle_returns_to_start(self, store_dir, trees_file,
                                               capsys):
        assert main(["store", "query", store_dir, trees_file, "--quiet"]) == 0
        before = capsys.readouterr().out
        assert main(["store", "add", store_dir, trees_file, "--quiet"]) == 0
        assert main(["store", "remove", store_dir, trees_file, "--quiet"]) == 0
        assert main(["store", "query", store_dir, trees_file, "--quiet"]) == 0
        assert capsys.readouterr().out == before

    def test_compact_preserves_answers(self, store_dir, trees_file, capsys):
        assert main(["store", "add", store_dir, trees_file, "--quiet"]) == 0
        assert main(["store", "query", store_dir, trees_file, "--quiet"]) == 0
        before = capsys.readouterr().out
        assert main(["store", "compact", store_dir, "--shards", "3",
                     "--quiet"]) == 0
        assert main(["store", "query", store_dir, trees_file, "--quiet"]) == 0
        assert capsys.readouterr().out == before
        assert main(["store", "info", store_dir, "--quiet"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["generation"] == 2
        assert info["journal_records"] == 0
        assert len(info["shards"]) == 3

    def test_remove_foreign_tree_is_an_error(self, store_dir, tmp_path,
                                             capsys):
        foreign = tmp_path / "foreign.nwk"
        foreign.write_text("((A,D),(B,E),C);\n")
        assert main(["store", "remove", store_dir, str(foreign),
                     "--quiet"]) == 2
        assert "never added" in capsys.readouterr().err


class TestObservability:
    def test_metrics_report_carries_store_spans(self, store_dir, trees_file,
                                                tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["store", "compact", store_dir, "--shards", "2",
                     "--metrics-out", str(out), "--quiet"]) == 0
        report = json.loads(out.read_text())

        def span_names(nodes):
            for node in nodes:
                yield node["name"]
                yield from span_names(node.get("children", []))

        names = set(span_names(report["spans"]))
        assert {"cli.store", "store.open", "store.compact",
                "store.shard"} <= names
        assert "store.compactions" in report["metrics"]["counters"]

    def test_trace_prints_span_tree(self, store_dir, trees_file, capsys):
        assert main(["store", "query", store_dir, trees_file, "--trace"]) == 0
        err = capsys.readouterr().err
        assert "store.open" in err
        assert "store.query" in err
