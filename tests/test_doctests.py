"""Run every docstring example in the library as a test.

The public API is documented with runnable examples; this harness
executes all of them so documentation rot fails CI.  Modules whose
doctests need optional context are still included — their examples are
written to be self-contained.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_doctests_actually_cover_examples():
    """Guard against the harness silently collecting nothing."""
    total = 0
    for name in MODULES:
        module = importlib.import_module(name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total > 80, f"expected a substantial doctest corpus, found {total}"
