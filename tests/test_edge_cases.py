"""Cross-module edge cases not covered by the per-module suites."""

import math

import pytest

from repro.bipartitions import (
    bipartition_masks,
    expected_bipartition_count,
    tree_from_bipartitions,
)
from repro.core import bfhrf_average_rf, build_bfh, robinson_foulds
from repro.core.vectorized import VectorizedBFH
from repro.newick import parse_newick, trees_from_string, write_newick
from repro.trees import TaxonNamespace, reroot_at_leaf, suppress_unifurcations
from repro.util.errors import (
    BipartitionError,
    CollectionError,
    NewickParseError,
    ReproError,
)


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        for exc_type in (NewickParseError, CollectionError, BipartitionError):
            assert issubclass(exc_type, ReproError)

    def test_parse_error_position_attributes(self):
        err = NewickParseError("boom", position=7, line=3)
        assert err.position == 7
        assert err.line == 3
        assert "line 3" in str(err) and "position 7" in str(err)

    def test_parse_error_without_location(self):
        err = NewickParseError("boom")
        assert "(" not in str(err)


class TestMinimalTrees:
    def test_three_taxon_tree_has_no_internal_splits(self):
        t = parse_newick("(A,B,C);")
        assert bipartition_masks(t) == set()
        assert expected_bipartition_count(3) == 0

    def test_rf_between_three_taxon_trees_zero(self):
        ns = TaxonNamespace()
        t1 = parse_newick("(A,B,C);", ns)
        t2 = parse_newick("((A,B),C);", ns)  # rooted shape, same unrooted tree
        assert robinson_foulds(t1, t2) == 0

    def test_two_taxon_tree(self):
        t = parse_newick("(A,B);")
        assert t.n_leaves == 2
        assert bipartition_masks(t) == set()

    def test_avg_rf_with_three_taxon_collection(self):
        trees = trees_from_string("(A,B,C);\n(C,A,B);")
        assert bfhrf_average_rf(trees) == [0.0, 0.0]


class TestDegenerateShapes:
    def test_chain_of_unifurcations(self):
        ns = TaxonNamespace(["A", "B", "C", "D"])
        t = parse_newick("((((A,B),(C,D))));", ns)  # double-wrapped root
        suppress_unifurcations(t)
        assert bipartition_masks(t) == {0b0011}

    def test_reroot_at_every_leaf_stable(self):
        base = parse_newick("(((A,B),(C,D)),(E,F));")
        expected = bipartition_masks(base)
        for label in "ABCDEF":
            t = base.copy()
            reroot_at_leaf(t, label)
            suppress_unifurcations(t)
            assert bipartition_masks(t) == expected

    def test_deeply_nested_newick_masks(self):
        n = 500
        text = "(" * (n - 1) + "t0"
        for i in range(1, n):
            text += f",t{i})"
        text += ";"
        t = parse_newick(text)
        masks = bipartition_masks(t)
        assert len(masks) == n - 3


class TestNamespaceSuperset:
    def test_trees_over_subnamespace_still_compare(self):
        """Namespace larger than the trees' taxa: masks stay comparable."""
        ns = TaxonNamespace([f"t{i}" for i in range(20)])
        t1 = parse_newick("((t3,t7),(t11,t19));", ns)
        t2 = parse_newick("((t3,t11),(t7,t19));", ns)
        assert robinson_foulds(t1, t2) == 2

    def test_bfh_with_high_bit_taxa(self):
        ns = TaxonNamespace([f"t{i}" for i in range(70)])  # beyond 64 bits
        trees = [parse_newick("((t60,t61),(t68,t69));", ns),
                 parse_newick("((t60,t68),(t61,t69));", ns)]
        assert bfhrf_average_rf(trees) == [1.0, 1.0]
        vbfh = VectorizedBFH.from_trees(trees)
        assert vbfh.average_rf_batch(trees).tolist() == [1.0, 1.0]


class TestBuilderDegenerate:
    def test_rebuild_with_all_trivial_splits_gives_star(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        trivial = {0b00001, 0b00010, 0b11110}
        t = tree_from_bipartitions(trivial, ns)
        assert bipartition_masks(t) == set()
        assert t.n_leaves == 5

    def test_rebuild_full_caterpillar(self):
        original = parse_newick("((((((A,B),C),D),E),F),G);")
        masks = bipartition_masks(original)
        rebuilt = tree_from_bipartitions(masks, original.taxon_namespace)
        assert bipartition_masks(rebuilt) == masks


class TestWriterPrecision:
    def test_precision_none_roundtrips_floats_exactly(self):
        values = [1 / 3, 1e-17, 12345.678901234567]
        ns = TaxonNamespace(["A", "B", "C", "D"])
        text = (f"((A:{values[0]!r},B:{values[1]!r}):{values[2]!r},(C:1,D:1):1);")
        t = parse_newick(text, ns)
        again = parse_newick(write_newick(t), TaxonNamespace(ns.labels))
        lengths = sorted(n.length for n in again.preorder() if n.length is not None)
        for v in values:
            assert any(math.isclose(v, l, rel_tol=0, abs_tol=0) for l in lengths)

    def test_zero_length_branches_kept(self):
        t = parse_newick("((A:0,B:0):0,(C:0,D:0):0);")
        assert write_newick(t).count(":0") >= 5


class TestHashEdge:
    def test_build_from_single_tree(self):
        trees = trees_from_string("((A,B),(C,D));")
        bfh = build_bfh(trees)
        assert bfh.n_trees == 1
        assert bfh.average_rf_of_tree(trees[0]) == 0.0

    def test_raw_masks_assume_fixed_taxa(self):
        """Raw masks carry no leaf-set: {A,B}|{C,D} over 4 taxa is
        bit-identical to {A,B}|rest over 6.  This is exactly the paper's
        §II-A fixed-taxa assumption; mixed-coverage comparisons must go
        through the variable-taxa restriction transform (§VII-E), and the
        rich `Bipartition` object carries the leaf set for identity."""
        from repro.bipartitions import Bipartition

        ns = TaxonNamespace(["A", "B", "C", "D", "E", "F"])
        reference = [parse_newick("((A,B),(C,D));", ns)]
        query = parse_newick("(((A,B),(C,D)),(E,F));", ns)
        bfh = build_bfh(reference)
        # Raw-mask view: the 4-taxon AB|CD collides bitwise with the
        # 6-taxon AB split, so one "match" appears: (1-1) + (3-1) = 2.
        assert bfh.average_rf(bipartition_masks(query)) == 2.0
        # The object layer distinguishes them (different leaf sets).
        small = Bipartition(0b000011, 0b001111, ns)
        large = Bipartition(0b000011, 0b111111, ns)
        assert small != large
        assert small.mask == large.mask  # same bits, different identity
