"""Grand-tour integration test: a realistic end-to-end analysis session.

Simulates a complete comparative-phylogenetics workflow exercising most
of the library in one coherent story, with cross-checks between stages:

1. simulate a species history and gene-tree posterior (MSC);
2. stream the posterior to disk and back (Newick);
3. build the BFH; compute averages four ways — all equal;
4. summarize: consensus, support annotation, diversity report,
   credible set;
5. cluster a contaminated posterior and recover the islands;
6. fragment the species tree, reassemble via supertree, complete a
   pruned summary tree;
7. convergence-check two posterior halves (ASDSF).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    annotate_support,
    asdsf,
    complete_tree_greedy,
    credible_set,
    diversity_report,
    greedy_rf_supertree,
    kmedoids_rf,
    mean_pairwise_rf,
    topology_key,
    total_restricted_rf,
)
from repro.bipartitions import bipartition_masks
from repro.core import (
    bfhrf_average_rf,
    build_bfh,
    consensus_tree,
    day_rf,
    hashrf_average_rf,
    sequential_average_rf,
)
from repro.core.mrsrf import mrsrf_average_rf
from repro.core.vectorized import vectorized_average_rf
from repro.newick import read_newick_file, write_newick_file
from repro.simulation import gene_tree_msc, yule_tree
from repro.trees import TaxonNamespace
from repro.trees.manipulate import prune_to_taxa

N_TAXA = 14
N_GENES = 60
SEED = 777


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    species = yule_tree(N_TAXA, rng=rng)
    genes = [gene_tree_msc(species, pop_scale=0.15, rng=rng)
             for _ in range(N_GENES)]
    path = tmp_path_factory.mktemp("tour") / "posterior.nwk"
    write_newick_file(path, genes)
    ns = TaxonNamespace()
    loaded = read_newick_file(path, ns)
    return species, genes, loaded, ns


class TestGrandTour:
    def test_stage1_roundtrip(self, session):
        species, genes, loaded, ns = session
        assert len(loaded) == N_GENES
        assert all(t.n_leaves == N_TAXA for t in loaded)

    def test_stage2_all_backends_agree(self, session):
        _species, _genes, loaded, _ns = session
        baseline = sequential_average_rf(loaded, loaded)
        assert bfhrf_average_rf(loaded) == pytest.approx(baseline)
        assert hashrf_average_rf(loaded) == pytest.approx(baseline)
        assert vectorized_average_rf(loaded) == pytest.approx(baseline)
        assert mrsrf_average_rf(loaded, partitions=3) == pytest.approx(baseline)

    def test_stage3_summaries_consistent(self, session):
        _species, _genes, loaded, ns = session
        bfh = build_bfh(loaded)
        summary = consensus_tree(bfh, loaded[0].taxon_namespace, method="greedy")
        annotate_support(summary, bfh)

        report = diversity_report(bfh, N_TAXA)
        assert report.n_trees == N_GENES
        assert report.mean_pairwise_rf == pytest.approx(mean_pairwise_rf(bfh))

        # The consensus is at least as central as the median member.
        consensus_score = bfh.average_rf(bipartition_masks(summary))
        members = bfhrf_average_rf(loaded)
        assert consensus_score <= sorted(members)[len(members) // 2] + 1e-9

        # Credible-set exemplars must be actual posterior topologies.
        chosen = credible_set(loaded, 0.8)
        posterior_keys = {topology_key(t) for t in loaded}
        assert all(topology_key(t) in posterior_keys for t, _f in chosen)

    def test_stage4_contamination_clustering(self, session):
        species, genes, _loaded, ns_unused = session
        rng = np.random.default_rng(SEED + 1)
        ns = species.taxon_namespace
        other_species = yule_tree([t.label for t in ns], namespace=ns, rng=rng)
        contaminants = [gene_tree_msc(other_species, pop_scale=0.05, rng=rng)
                        for _ in range(15)]
        mixed = genes[:15] + contaminants
        result = kmedoids_rf(mixed, 2, rng=0)
        labels = result.labels
        # The two halves separate (up to label swap).
        first_half = set(labels[:15].tolist())
        second_half = set(labels[15:].tolist())
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_stage5_supertree_and_completion(self, session):
        species, genes, _loaded, _ns = session
        ns = species.taxon_namespace
        labels = ns.labels
        fragments = [
            prune_to_taxa(species.copy(), labels[:10]),
            prune_to_taxa(species.copy(), labels[4:]),
        ]
        supertree = greedy_rf_supertree(fragments, ns)
        assert total_restricted_rf(supertree, fragments) == 0
        assert day_rf(supertree, species) <= 4  # fragments may underdetermine

        # Prune two taxa from the species tree, complete against the genes.
        partial = prune_to_taxa(species.copy(), labels[2:])
        bfh = build_bfh(genes)
        completed, score = complete_tree_greedy(partial, bfh)
        assert sorted(completed.leaf_labels()) == sorted(labels)
        species_score = bfh.average_rf(bipartition_masks(species))
        assert score <= species_score + 4

    def test_stage6_convergence(self, session):
        _species, genes, _loaded, _ns = session
        value = asdsf([genes[::2], genes[1::2]])
        # Interleaved halves of one posterior sample: strongly convergent.
        assert value < 0.1
