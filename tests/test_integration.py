"""End-to-end integration tests spanning the whole pipeline:

simulate -> write Newick -> stream from disk -> all four algorithms ->
consensus/best-tree applications, with exact cross-method agreement.
"""

import pytest

from repro.bipartitions import bipartition_masks
from repro.core import (
    average_rf,
    best_query_tree,
    bfhrf_average_rf,
    build_bfh,
    consensus,
    day_rf,
    dsmp_average_rf,
    hashrf_average_rf,
    sequential_average_rf,
)
from repro.core.bfhrf import bfhrf_average_rf_stream
from repro.newick import iter_newick_file, read_newick_file, write_newick_file
from repro.simulation import insect_like, variable_trees
from repro.trees import TaxonNamespace


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    ds = variable_trees(40, n_taxa=30, seed=77)
    path = tmp_path_factory.mktemp("data") / "collection.nwk"
    write_newick_file(path, ds.trees)
    return path


class TestFullPipeline:
    def test_disk_roundtrip_preserves_distances(self, dataset_file):
        trees = read_newick_file(dataset_file)
        original = variable_trees(40, n_taxa=30, seed=77).trees
        # Loaded trees have a different namespace but identical topology;
        # averages must match.
        assert bfhrf_average_rf(trees) == pytest.approx(bfhrf_average_rf(original))

    def test_streaming_matches_batch(self, dataset_file):
        ns = TaxonNamespace()
        bfh = build_bfh(iter_newick_file(dataset_file, ns))
        streamed = list(bfhrf_average_rf_stream(iter_newick_file(dataset_file, ns), bfh))
        batch = bfhrf_average_rf(read_newick_file(dataset_file))
        assert streamed == pytest.approx(batch)

    def test_all_methods_on_file(self, dataset_file):
        trees = read_newick_file(dataset_file)
        ds = sequential_average_rf(trees, trees)
        assert bfhrf_average_rf(trees) == pytest.approx(ds)
        assert hashrf_average_rf(trees) == pytest.approx(ds)
        assert dsmp_average_rf(trees, trees, n_workers=2) == pytest.approx(ds)
        assert bfhrf_average_rf(trees, n_workers=2) == pytest.approx(ds)

    def test_unweighted_insect_like_pipeline(self, tmp_path):
        """The scenario that broke HashRF: unweighted (topology-only) data.
        BFHRF must handle it end to end."""
        ds = insect_like(r=6)
        path = tmp_path / "insect.nwk"
        write_newick_file(path, ds.trees, include_lengths=False)
        trees = read_newick_file(path)
        values = bfhrf_average_rf(trees)
        assert len(values) == 6
        assert all(v >= 0 for v in values)

    def test_best_tree_consistent_with_averages(self, dataset_file):
        trees = read_newick_file(dataset_file)
        index, tree, value = best_query_tree(trees)
        values = average_rf(trees)
        assert value == min(values)
        assert day_rf(tree, trees[index]) == 0

    def test_consensus_is_central(self, dataset_file):
        """The majority consensus should be at least as close to the
        collection (on average) as a typical member is."""
        trees = read_newick_file(dataset_file)
        ctree = consensus(trees, method="greedy")
        ns = trees[0].taxon_namespace
        assert ctree.taxon_namespace is ns
        bfh = build_bfh(trees)
        consensus_avg = bfh.average_rf(bipartition_masks(ctree))
        member_avgs = bfhrf_average_rf(trees)
        assert consensus_avg <= sorted(member_avgs)[len(member_avgs) // 2] + 1e-9

    def test_query_against_disjoint_reference_file(self, dataset_file, tmp_path):
        ns = TaxonNamespace()
        reference = read_newick_file(dataset_file, ns)
        query_ds = variable_trees(5, n_taxa=30, seed=78)
        qpath = tmp_path / "query.nwk"
        write_newick_file(qpath, query_ds.trees)
        query = read_newick_file(qpath, ns)
        values = bfhrf_average_rf(query, reference)
        expected = sequential_average_rf(query, reference)
        assert values == pytest.approx(expected)
