"""Deep fuzzing — excluded from the default run (``-m fuzz`` to enable).

CI's scheduled job runs this nightly with artifact upload; locally::

    PYTHONPATH=src python -m pytest tests/testing/test_fuzz_deep.py -m fuzz
"""

from __future__ import annotations

import pytest

from repro.testing import SelfCheck

pytestmark = pytest.mark.fuzz


def test_deep_profile_fuzz(tmp_path):
    result = SelfCheck(2026, rounds=150, profile="deep",
                       artifact_dir=str(tmp_path)).run()
    assert result.ok, result.summary()


def test_quick_profile_many_seeds(tmp_path):
    for master in (0, 1, 17):
        result = SelfCheck(master, rounds=60, profile="quick",
                           artifact_dir=str(tmp_path)).run()
        assert result.ok, result.summary()
