"""Deep fuzzing — excluded from the default run (``-m fuzz`` to enable).

CI's scheduled job runs this nightly with artifact upload; locally::

    PYTHONPATH=src python -m pytest tests/testing/test_fuzz_deep.py -m fuzz

Set ``REPRO_FUZZ_SEED`` to pin the master seed (CI passes its run number
so every nightly explores a fresh region while staying replayable).  On
failure the assertion message carries the master seed and the per-round
seeds, so any red run reproduces from the log alone.
"""

from __future__ import annotations

import os

import pytest

from repro.testing import SelfCheck

pytestmark = pytest.mark.fuzz

DEFAULT_DEEP_SEED = 2026


def _master_seed(default: int) -> int:
    raw = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    if not raw:
        return default
    try:
        return int(raw, 0)
    except ValueError as exc:
        raise RuntimeError(
            f"REPRO_FUZZ_SEED={raw!r} is not an integer") from exc


def _describe(result) -> str:
    """Failure message precise enough to replay without the artifacts."""
    failing = [r for r in result.rounds if not r.ok]
    lines = [f"master seed {result.seed} (set REPRO_FUZZ_SEED={result.seed} "
             "to replay this exact run)"]
    lines += [f"  round {r.index}: seed {r.seed}, strategy {r.strategy}, "
              f"failed {r.failed_check}" for r in failing]
    lines.append(result.summary())
    return "\n".join(lines)


def test_deep_profile_fuzz(tmp_path):
    seed = _master_seed(DEFAULT_DEEP_SEED)
    result = SelfCheck(seed, rounds=150, profile="deep",
                       artifact_dir=str(tmp_path)).run()
    assert result.ok, _describe(result)


def test_quick_profile_many_seeds(tmp_path):
    base = _master_seed(0)
    for master in (base, base + 1, base + 17):
        result = SelfCheck(master, rounds=60, profile="quick",
                           artifact_dir=str(tmp_path)).run()
        assert result.ok, _describe(result)
