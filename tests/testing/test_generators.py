"""Generator determinism and the analytic extreme-case constructions."""

from __future__ import annotations

import pytest

from repro.core.rf import robinson_foulds
from repro.testing.generators import (
    HOSTILE_LABELS,
    PROFILES,
    STRATEGY_NAMES,
    caterpillar_tree,
    generate_case,
    max_rf_caterpillar_orders,
)
from repro.trees.taxon import TaxonNamespace

QUICK = PROFILES["quick"]
DEEP = PROFILES["deep"]


class TestDeterminism:
    def test_same_seed_same_case(self):
        """The replay contract: a seed fully determines the case."""
        for seed in (0, 1, 42, 2**40 + 17):
            a = generate_case(seed, QUICK)
            b = generate_case(seed, QUICK)
            assert a.name == b.name
            assert a.query_newick() == b.query_newick()
            assert a.reference_newick() == b.reference_newick()
            assert (a.same_collection, a.weighted, a.include_trivial) == \
                   (b.same_collection, b.weighted, b.include_trivial)

    def test_different_seeds_differ(self):
        newicks = {generate_case(seed, QUICK).query_newick()
                   for seed in range(20)}
        assert len(newicks) > 15  # collisions possible but rare

    def test_deep_profile_reaches_larger_sizes(self):
        sizes = [generate_case(seed, DEEP).n_taxa for seed in range(30)]
        assert max(sizes) > QUICK.max_taxa


class TestCaseShape:
    @pytest.mark.parametrize("seed", range(12))
    def test_invariants(self, seed):
        case = generate_case(seed, QUICK)
        assert case.name in STRATEGY_NAMES
        assert QUICK.min_taxa <= case.n_taxa
        assert len(case.query) >= 1
        assert len(case.reference) >= 1
        if case.same_collection:
            assert case.reference is case.query
        for tree in case.query + case.reference:
            assert tree.taxon_namespace is case.namespace
            assert tree.n_leaves >= 4

    def test_strategy_coverage(self):
        seen = {generate_case(seed, QUICK).name for seed in range(60)}
        assert seen == set(STRATEGY_NAMES)

    def test_hostile_labels_appear(self):
        hostile = set(HOSTILE_LABELS)
        for seed in range(60):
            case = generate_case(seed, QUICK)
            labels = {label for tree in case.query for label in tree.leaf_labels()}
            if labels & hostile:
                return
        pytest.fail("no hostile label in 60 generated cases")


class TestCaterpillarExtremes:
    def test_orders_share_no_nontrivial_split(self):
        for n in (5, 6, 9, 12):
            first, second = max_rf_caterpillar_orders(n)
            ns = TaxonNamespace([f"L{i}" for i in range(n)])
            t1 = caterpillar_tree([ns[i].label for i in first], ns)
            t2 = caterpillar_tree([ns[i].label for i in second], ns)
            assert robinson_foulds(t1, t2) == 2 * (n - 3)

    def test_caterpillar_is_binary(self):
        ns = TaxonNamespace(["a", "b", "c", "d", "e"])
        tree = caterpillar_tree(["a", "b", "c", "d", "e"], ns)
        assert tree.n_leaves == 5
        assert robinson_foulds(tree, tree) == 0
