"""The selfcheck round loop, fault injection, and reproducer artifacts."""

from __future__ import annotations

import json

import pytest

from repro.core.parallel import fork_available
from repro.testing import (
    CASE_CHECKS,
    FAULT_KINDS,
    SelfCheck,
    inject_fault,
    load_artifact,
    replay_artifact,
)


class TestSelfCheck:
    def test_quick_run_passes(self, tmp_path):
        result = SelfCheck(42, rounds=10, profile="quick",
                           artifact_dir=str(tmp_path)).run()
        assert result.ok, result.summary()
        assert len(result.rounds) == 10
        assert result.checks_run == 10 * (len(CASE_CHECKS) + 1)
        expected = {"naive", "bfhrf", "vectorized", "day", "hashrf"}
        if fork_available():
            expected.add("bfhrf-fork")
        assert expected <= result.implementations
        assert not list(tmp_path.iterdir())  # no artifacts on a clean run

    def test_deterministic_across_runs(self, tmp_path):
        a = SelfCheck(7, rounds=5, artifact_dir=str(tmp_path / "a")).run()
        b = SelfCheck(7, rounds=5, artifact_dir=str(tmp_path / "b")).run()
        assert [r.seed for r in a.rounds] == [r.seed for r in b.rounds]
        assert [r.strategy for r in a.rounds] == [r.strategy for r in b.rounds]

    @pytest.mark.parametrize("fault", FAULT_KINDS)
    def test_fault_is_caught_and_minimized(self, tmp_path, fault):
        result = SelfCheck(42, rounds=10, profile="quick",
                           artifact_dir=str(tmp_path), fault=fault).run()
        assert not result.ok
        assert result.artifacts
        root = result.artifacts[0]
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["shrunk"] is True
        assert manifest["failures"]
        assert (root / "query.newick").exists()
        # Same master seed, same fault: the failing round seeds replay.
        again = SelfCheck(42, rounds=10, profile="quick",
                          artifact_dir=str(tmp_path / "again"), fault=fault).run()
        assert [r.index for r in again.rounds if not r.ok] == \
               [r.index for r in result.rounds if not r.ok]

    def test_artifact_roundtrip_and_replay(self, tmp_path):
        result = SelfCheck(42, rounds=5, artifact_dir=str(tmp_path),
                           fault="bfh-count").run()
        root = result.artifacts[0]
        case, check = load_artifact(root)
        assert check == "differential-rf"
        assert len(case.query) >= 1
        # Without the fault the saved reproducer passes — i.e. "fixed".
        assert replay_artifact(root) == []
        # With the fault re-injected it fails again — a real reproducer.
        with inject_fault("bfh-count"):
            assert replay_artifact(root)

    def test_crash_becomes_minimized_artifact(self, tmp_path, monkeypatch):
        """A check that raises (not just disagrees) still yields a
        shrunk reproducer instead of killing the run — how the fuzzer
        reported the splitless-reference IndexError in vectorized.py."""
        from repro.testing import harness as harness_module

        def crashing(case):
            raise IndexError("boom")

        monkeypatch.setitem(harness_module.CASE_CHECKS, "crashing", crashing)
        result = SelfCheck(3, rounds=1, artifact_dir=str(tmp_path)).run()
        assert not result.ok
        assert result.rounds[0].failed_check == "crashing"
        manifest = json.loads(
            (result.artifacts[0] / "manifest.json").read_text())
        assert manifest["shrunk"] is True
        assert "IndexError" in manifest["failures"][0]

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            with inject_fault("no-such-fault"):
                pass

    def test_summary_mentions_failures(self, tmp_path):
        result = SelfCheck(42, rounds=3, artifact_dir=str(tmp_path),
                           fault="bfh-count").run()
        text = result.summary()
        assert "FAIL" in text
        assert "differential-rf" in text
        assert "reproducer:" in text
