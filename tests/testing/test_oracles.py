"""Differential runner aggregation and analytic oracle behaviour."""

from __future__ import annotations

import pytest

from repro.core.parallel import fork_available
from repro.testing import generate_case, inject_fault, run_differential
from repro.testing.oracles import (
    check_caterpillar_max_rf,
    check_differential_weighted,
    check_self_rf_zero,
    check_store_roundtrip,
    check_symmetry,
    check_triangle,
    check_weighted_linearity,
)


class TestDifferentialRunner:
    @pytest.mark.parametrize("seed", range(8))
    def test_clean_cases_agree(self, seed):
        case = generate_case(seed, "quick")
        report = run_differential(case)
        assert report.ok, [str(f) for f in report.failures]
        assert {"naive", "bfhrf", "vectorized"} <= report.implementations

    def test_all_implementations_reachable(self):
        exercised = set()
        for seed in range(20):
            exercised |= run_differential(generate_case(seed, "quick")).implementations
        expected = {"naive", "bfhrf", "vectorized", "day", "hashrf"}
        if fork_available():
            expected.add("bfhrf-fork")
        assert expected <= exercised

    def test_applicability_gating(self):
        for seed in range(20):
            case = generate_case(seed, "quick")
            report = run_differential(case)
            if not case.same_collection:
                assert "hashrf" not in report.implementations
            coverages = {t.leaf_mask() for t in case.query + case.reference}
            if len(coverages) > 1:
                assert "day" not in report.implementations

    def test_fault_produces_attributed_failures(self):
        with inject_fault("bfh-count"):
            for seed in range(10):
                report = run_differential(generate_case(seed, "quick"))
                if report.failures:
                    break
            else:
                pytest.fail("bfh-count fault never detected in 10 cases")
        f = report.failures[0]
        assert f.check == "differential-rf"
        assert f.implementation in {"bfhrf", "bfhrf-fork", "vectorized"}
        assert f.index is not None
        assert f.implementation in str(f)

    def test_weighted_fault_detected(self):
        with inject_fault("weighted-total"):
            for seed in range(10):
                case = generate_case(seed, "quick")
                if case.weighted and check_differential_weighted(case):
                    return
        pytest.fail("weighted-total fault never detected in 10 cases")


class TestAnalyticOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_metric_axioms_hold(self, seed):
        case = generate_case(seed, "quick")
        assert check_self_rf_zero(case) == []
        assert check_symmetry(case) == []
        assert check_triangle(case) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_weighted_checks_hold(self, seed):
        case = generate_case(seed, "quick")
        assert check_differential_weighted(case) == []
        assert check_weighted_linearity(case) == []

    @pytest.mark.parametrize("n", [4, 5, 7, 10, 16])
    def test_caterpillar_max_rf(self, n):
        assert check_caterpillar_max_rf(n) == []


class TestStoreOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_clean_cases_pass(self, seed):
        case = generate_case(seed, "quick")
        assert check_store_roundtrip(case) == [], \
            [str(f) for f in check_store_roundtrip(case)]

    def test_deterministic_in_the_case(self):
        """Same case → same op interleaving → same verdict (the property
        the shrinker relies on)."""
        case = generate_case(11, "quick")
        assert check_store_roundtrip(case) == check_store_roundtrip(case)

    def test_store_fault_detected_and_attributed(self):
        with inject_fault("store-count"):
            failures = check_store_roundtrip(generate_case(0, "quick"))
        assert failures
        assert failures[0].check == "store-roundtrip"
        assert "fresh build" in failures[0].detail

    def test_store_fault_invisible_to_other_checks(self):
        """store-count corrupts only the persistent path, so only the
        store oracle can catch it — the reason it must be registered."""
        case = generate_case(0, "quick")
        with inject_fault("store-count"):
            assert run_differential(case).ok
            assert check_self_rf_zero(case) == []
