"""Standing serialization properties over the generator corpus.

The harness runs these per fuzz round; this module pins a fixed slice of
the corpus as an always-on regression net, including the hostile-label
cases that exposed the quote-unaware NEXUS reader.
"""

from __future__ import annotations

import io

import pytest

from repro.core.rf import robinson_foulds
from repro.newick.nexus import read_nexus_trees
from repro.newick.nexus_writer import nexus_string
from repro.testing import generate_case
from repro.testing.generators import HOSTILE_LABELS, caterpillar_tree
from repro.testing.properties import prop_newick_roundtrip, prop_nexus_roundtrip
from repro.trees.taxon import TaxonNamespace


@pytest.mark.parametrize("seed", range(15))
def test_newick_roundtrip(seed):
    case = generate_case(seed, "quick")
    assert prop_newick_roundtrip(case) == []


@pytest.mark.parametrize("seed", range(15))
def test_nexus_roundtrip(seed):
    case = generate_case(seed, "quick")
    assert prop_nexus_roundtrip(case) == []


def test_hostile_labels_survive_nexus():
    """Regression: quoted labels with , ; [ ] ' used to break the reader."""
    ns = TaxonNamespace()
    tree = caterpillar_tree(list(HOSTILE_LABELS), ns)
    text = nexus_string([tree], include_lengths=False)
    ns2 = TaxonNamespace()
    parsed = read_nexus_trees(io.StringIO(text), ns2)
    assert len(parsed) == 1
    assert sorted(parsed[0].leaf_labels()) == sorted(HOSTILE_LABELS)


def test_hostile_labels_topology_preserved():
    ns = TaxonNamespace()
    tree = caterpillar_tree(list(HOSTILE_LABELS), ns)
    text = nexus_string([tree], include_lengths=False)
    parsed = read_nexus_trees(io.StringIO(text), ns)
    assert robinson_foulds(tree, parsed[0]) == 0
