"""Property tests: the shared-memory BFH round-trips the dict BFH exactly.

Seeded ``generate_case`` workloads (hostile labels, multifurcations,
zero-length branches) drive the ``check_shm_roundtrip`` oracle; a
dedicated profile forces the taxon count onto 64/128-bit word edges,
where the packed-bitmask row width of the shared layout changes and
off-by-one word bugs would live.  Splitless (star) references pin the
empty-table path.  The same oracle runs inside ``bfhrf selfcheck``'s
quick profile; this file is its deterministic pytest twin.
"""

from dataclasses import replace

import pytest

from repro.core.bfhrf import build_bfh
from repro.core.shmrf import shm_average_rf
from repro.newick import trees_from_string
from repro.runtime.shm import SharedBFH, owned_leaked_segments
from repro.testing.generators import PROFILES, generate_case
from repro.testing.oracles import check_shm_roundtrip

QUICK_SEEDS = range(2600, 2616)

# Force every case onto a word-boundary taxon count: 63/64/65 straddle
# the single-word edge, 127/128/129 the two-word edge.
BOUNDARY_PROFILE = replace(PROFILES["deep"], name="shm-boundary",
                           boundary_taxa=(63, 64, 65, 127, 128, 129),
                           boundary_taxa_prob=1.0,
                           max_trees=6)
BOUNDARY_SEEDS = range(7100, 7112)


@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_roundtrip_matches_dict_bfh(seed):
    case = generate_case(seed, "quick")
    failures = check_shm_roundtrip(case)
    assert not failures, "\n".join(str(f) for f in failures)


@pytest.mark.parametrize("seed", BOUNDARY_SEEDS)
def test_roundtrip_at_word_boundaries(seed):
    case = generate_case(seed, BOUNDARY_PROFILE)
    assert case.notes.get("boundary_taxa") is True
    # The *namespace* (and hence mask width) sits on the word edge even
    # when a variable-taxa case prunes some leaves from the trees.
    assert case.notes["n_taxa"] in BOUNDARY_PROFILE.boundary_taxa
    failures = check_shm_roundtrip(case)
    assert not failures, "\n".join(str(f) for f in failures)


@pytest.mark.parametrize("seed", BOUNDARY_SEEDS)
def test_keys_span_expected_word_count(seed):
    """The shared row width must jump exactly at the 64-taxon edge."""
    case = generate_case(seed, BOUNDARY_PROFILE)
    n_taxa = len(case.reference[0].taxon_namespace)
    bfh = build_bfh(case.reference, include_trivial=case.include_trivial)
    with SharedBFH.from_bfh(bfh, max(1, n_taxa)) as shared:
        assert shared.n_words == max(1, -(-n_taxa // 64))
        assert shared.to_bfh().counts == bfh.counts
    assert owned_leaked_segments() == []


def test_splitless_star_reference():
    """A star tree contributes no internal splits: empty shared table."""
    trees = trees_from_string("(A,B,C,D,E);\n(A,B,C,D,E);\n(A,B,C,D,E);")
    bfh = build_bfh(trees)
    assert not bfh.counts
    with SharedBFH.from_bfh(bfh, 5) as shared:
        assert len(shared) == 0
        # Every query is maximally distant from an empty reference table.
        got = shm_average_rf(trees, shared=shared)
    from repro.core.bfhrf import bfhrf_average_rf

    assert got == bfhrf_average_rf(trees, trees)


def test_splitless_query_against_resolved_reference():
    resolved = trees_from_string("((A,B),(C,(D,E)));\n((A,C),(B,(D,E)));")
    star = trees_from_string("(A,B,C,D,E);", resolved[0].taxon_namespace)
    from repro.core.bfhrf import bfhrf_average_rf

    got = shm_average_rf(star, resolved)
    assert got == bfhrf_average_rf(star, resolved)


def test_selfcheck_quick_profile_includes_shm_roundtrip():
    """The oracle must actually run inside ``bfhrf selfcheck``."""
    from repro.testing.harness import CASE_CHECKS

    assert "shm-roundtrip" in CASE_CHECKS
    assert CASE_CHECKS["shm-roundtrip"] is check_shm_roundtrip
