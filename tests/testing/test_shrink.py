"""Shrinker convergence on planted bugs."""

from __future__ import annotations

import pytest

from repro.newick.io import trees_from_string
from repro.testing import generate_case, inject_fault, shrink_case
from repro.testing.generators import TreeCase
from repro.testing.oracles import check_differential_rf
from repro.trees.taxon import TaxonNamespace

PLANTED = (
    "((A,B),(C,D),(E,F));\n"
    "((A,C),(B,D),(E,F));\n"
    "((A,E),(B,F),(C,D));"
)


def _planted_case() -> TreeCase:
    ns = TaxonNamespace()
    trees = trees_from_string(PLANTED, ns)
    return TreeCase(name="planted", seed=99, query=trees, reference=trees,
                    namespace=ns, same_collection=True)


def _fails(case: TreeCase) -> bool:
    """The planted 'bug': any tree containing both taxa A and B."""
    return any({"A", "B"} <= set(t.leaf_labels()) for t in case.query)


class TestShrinkCase:
    def test_converges_to_minimum(self):
        shrunk = shrink_case(_planted_case(), _fails)
        assert len(shrunk.query) == 1
        assert shrunk.n_taxa == 4  # the floor, since only A and B matter
        assert {"A", "B"} <= set(shrunk.query[0].leaf_labels())
        assert shrunk.shrunk
        assert shrunk.same_collection  # Q-is-R identity preserved

    def test_deterministic(self):
        a = shrink_case(_planted_case(), _fails)
        b = shrink_case(_planted_case(), _fails)
        assert a.query_newick() == b.query_newick()

    def test_rejects_passing_case(self):
        with pytest.raises(ValueError):
            shrink_case(_planted_case(), lambda _c: False)

    def test_shrinks_real_fault(self):
        """End to end: minimize a genuine differential failure."""
        with inject_fault("bfh-count"):
            for seed in range(10):
                case = generate_case(seed, "quick")
                if check_differential_rf(case):
                    break
            else:
                pytest.fail("no failing case found")
            shrunk = shrink_case(case, lambda c: bool(check_differential_rf(c)))
            assert check_differential_rf(shrunk)
        assert len(shrunk.query) <= len(case.query)
        assert shrunk.n_taxa <= case.n_taxa
        # Fault removed: the minimized reproducer passes again.
        assert check_differential_rf(shrunk) == []
