"""Unit tests for the ASCII tree renderer."""

import pytest
from hypothesis import given, settings

from repro.trees.drawing import ascii_tree
from repro.newick import parse_newick

from tests.conftest import make_random_tree, tree_shapes


class TestAsciiTree:
    def test_three_leaves(self):
        out = ascii_tree(parse_newick("((A,B),C);"))
        assert out.splitlines() == [" ╭─┬─ A", "─┤ ╰─ B", " ╰─ C"]

    def test_one_row_per_leaf(self):
        tree = parse_newick("((A,B),(C,(D,E)));")
        lines = ascii_tree(tree).splitlines()
        assert len(lines) == 5
        for label in "ABCDE":
            assert sum(label in line for line in lines) == 1

    def test_star_tree(self):
        lines = ascii_tree(parse_newick("(A,B,C,D);")).splitlines()
        assert len(lines) == 4
        assert lines[0].lstrip().startswith("╭─")
        assert lines[-1].lstrip().startswith("╰─")

    def test_internal_labels_shown(self):
        out = ascii_tree(parse_newick("((A,B)95,C);"))
        assert "95" in out

    def test_internal_labels_hidden(self):
        out = ascii_tree(parse_newick("((A,B)95,C);"),
                         show_internal_labels=False)
        assert "95" not in out

    def test_leaf_order_preserved(self):
        tree = parse_newick("((D,C),(B,A));")
        lines = ascii_tree(tree).splitlines()
        order = [line.split()[-1] for line in lines]
        assert order == ["D", "C", "B", "A"]

    def test_single_leaf(self):
        assert ascii_tree(parse_newick("A;")) == "─ A"

    @settings(max_examples=25, deadline=None)
    @given(tree_shapes)
    def test_renders_any_tree(self, shape):
        n, seed = shape
        tree = make_random_tree(n, seed=seed)
        lines = ascii_tree(tree).splitlines()
        assert len(lines) == n
        rendered_labels = {line.split()[-1] for line in lines}
        assert rendered_labels == set(tree.leaf_labels())
