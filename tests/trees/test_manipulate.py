"""Unit tests for repro.trees.manipulate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bipartitions import bipartition_masks
from repro.newick import parse_newick
from repro.trees import TaxonNamespace
from repro.trees.manipulate import (
    collapse_edge,
    prune_to_taxa,
    reroot_at_leaf,
    reroot_at_node,
    resolve_polytomies,
    suppress_unifurcations,
)
from repro.util.errors import TaxonError, TreeStructureError

from tests.conftest import make_random_tree, tree_shapes


class TestReroot:
    def test_reroot_at_leaf_puts_leaf_under_root(self):
        t = parse_newick("((A,B),(C,D));")
        reroot_at_leaf(t, "C")
        assert any(c.is_leaf and c.taxon.label == "C" for c in t.root.children)

    def test_reroot_preserves_leaf_set(self):
        t = make_random_tree(10, seed=1)
        mask = t.leaf_mask()
        reroot_at_leaf(t, t.taxon_namespace[3].label)
        assert t.leaf_mask() == mask

    def test_reroot_preserves_unrooted_bipartitions(self):
        t = make_random_tree(12, seed=2)
        before = bipartition_masks(t)
        reroot_at_leaf(t, t.taxon_namespace[7].label)
        suppress_unifurcations(t)
        assert bipartition_masks(t) == before

    @settings(max_examples=25, deadline=None)
    @given(tree_shapes, st.integers(0, 1000))
    def test_reroot_anywhere_preserves_splits(self, shape, pick):
        n, seed = shape
        t = make_random_tree(n, seed=seed)
        before = bipartition_masks(t)
        label = t.taxon_namespace[pick % n].label
        reroot_at_leaf(t, label)
        suppress_unifurcations(t)
        assert bipartition_masks(t) == before

    def test_reroot_missing_leaf(self):
        with pytest.raises(TaxonError):
            reroot_at_leaf(parse_newick("((A,B),(C,D));"), "Z")

    def test_reroot_at_current_root_noop(self):
        t = parse_newick("((A,B),(C,D));")
        reroot_at_node(t, t.root)
        assert t.n_leaves == 4

    def test_reroot_root_has_no_length(self):
        t = parse_newick("((A:1,B:1):1,(C:1,D:1):1);")
        reroot_at_leaf(t, "D")
        assert t.root.length is None

    def test_reroot_conserves_total_length(self):
        t = parse_newick("((A:1,B:2):3,(C:4,D:5):6);")
        total_before = sum(n.length or 0.0 for n in t.preorder())
        reroot_at_leaf(t, "C")
        total_after = sum(n.length or 0.0 for n in t.preorder())
        assert total_after == pytest.approx(total_before)


class TestPrune:
    def test_prune_keeps_requested(self):
        t = parse_newick("((A,B),(C,(D,E)));")
        prune_to_taxa(t, ["A", "C", "D"])
        assert sorted(t.leaf_labels()) == ["A", "C", "D"]

    def test_prune_suppresses_unifurcations(self):
        t = parse_newick("((A,B),(C,(D,E)));")
        prune_to_taxa(t, ["A", "C", "D"])
        for node in t.preorder():
            assert node.is_leaf or len(node.children) >= 2

    def test_prune_sums_lengths(self):
        t = parse_newick("((A:1,B:1):1,(C:1,(D:2,E:2):3):4);")
        prune_to_taxa(t, ["A", "B", "C", "D"])
        # E removed: the (D,E) node contracts; D's path keeps 2+3.
        d_leaf = next(l for l in t.leaves() if l.taxon.label == "D")
        assert d_leaf.length == pytest.approx(5.0)

    def test_prune_unknown_label_raises(self):
        with pytest.raises(TaxonError):
            prune_to_taxa(parse_newick("((A,B),(C,D));"), ["A", "Z"])

    def test_prune_everything_raises(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "Z"])
        t = parse_newick("((A,B),(C,D));", ns)
        with pytest.raises(TreeStructureError):
            prune_to_taxa(t, ["Z"])

    def test_prune_restriction_matches_projection(self):
        # Pruning then extracting equals extracting then projecting.
        from repro.bipartitions import project_mask

        t = make_random_tree(10, seed=9)
        ns = t.taxon_namespace
        keep = [ns[i].label for i in (0, 2, 3, 5, 7, 8)]
        keep_mask = ns.mask_of(keep)
        full = t.leaf_mask()
        projected = set()
        for mask in bipartition_masks(t):
            p = project_mask(mask, full, keep_mask)
            if p is not None:
                projected.add(p)
        pruned = t.copy()
        prune_to_taxa(pruned, keep)
        assert bipartition_masks(pruned) == projected


class TestSuppressUnifurcations:
    def test_contracts_chain(self):
        ns = TaxonNamespace(["A", "B"])
        t = parse_newick("((A,B));", ns)  # root -> unary -> (A,B)
        suppress_unifurcations(t)
        assert len(t.root.children) == 2

    def test_noop_on_clean_tree(self):
        t = parse_newick("((A,B),(C,D));")
        before = [id(n) for n in t.preorder()]
        suppress_unifurcations(t)
        assert [id(n) for n in t.preorder()] == before


class TestResolvePolytomies:
    def test_resolves_star(self):
        t = parse_newick("(A,B,C,D,E,F);")
        resolve_polytomies(t, rng=1)
        assert t.is_binary()
        assert sorted(t.leaf_labels()) == ["A", "B", "C", "D", "E", "F"]

    def test_binary_tree_untouched(self):
        t = parse_newick("((A,B),(C,D));")
        resolve_polytomies(t, rng=1)
        assert t.n_nodes == 7

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 20), st.integers(0, 999))
    def test_always_binary(self, n, seed):
        labels = [f"t{i}" for i in range(n)]
        t = parse_newick("(" + ",".join(labels) + ");")
        resolve_polytomies(t, rng=seed)
        assert t.is_binary()
        assert t.n_leaves == n


class TestCollapseEdge:
    def test_creates_polytomy(self):
        t = parse_newick("((A,B),(C,D));")
        internal_child = next(c for c in t.root.children if not c.is_leaf)
        collapse_edge(t, internal_child)
        assert not t.is_rooted_shape()
        assert t.n_leaves == 4

    def test_collapse_removes_one_split(self):
        t = parse_newick("(((A,B),(C,D)),(E,F));")
        before = bipartition_masks(t)
        victim = t.root.children[0].children[0]  # the (A,B) clade node
        collapse_edge(t, victim)
        after = bipartition_masks(t)
        assert len(after) == len(before) - 1
        assert after < before

    def test_cannot_collapse_root(self):
        t = parse_newick("((A,B),(C,D));")
        with pytest.raises(TreeStructureError):
            collapse_edge(t, t.root)

    def test_cannot_collapse_leaf_edge(self):
        t = parse_newick("((A,B),(C,D));")
        leaf = next(t.leaves())
        with pytest.raises(TreeStructureError):
            collapse_edge(t, leaf)
