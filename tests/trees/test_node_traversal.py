"""Unit tests for repro.trees.node and repro.trees.traversal."""

import pytest

from repro.newick import parse_newick
from repro.trees.node import Node
from repro.trees.taxon import TaxonNamespace
from repro.trees.traversal import edges, internal_nodes, leaves, levelorder, postorder, preorder


@pytest.fixture
def caterpillar():
    """((((A,B),C),D),E) — a ladder tree exercising deep nesting."""
    return parse_newick("((((A,B),C),D),E);")


class TestNode:
    def test_add_child_sets_parent(self):
        p, c = Node(), Node()
        p.add_child(c)
        assert c.parent is p
        assert p.children == [c]

    def test_add_child_moves_between_parents(self):
        p1, p2, c = Node(), Node(), Node()
        p1.add_child(c)
        p2.add_child(c)
        assert c.parent is p2
        assert p1.children == []

    def test_remove_child(self):
        p, c = Node(), Node()
        p.add_child(c)
        p.remove_child(c)
        assert c.parent is None
        assert p.children == []

    def test_remove_non_child_raises(self):
        with pytest.raises(ValueError):
            Node().remove_child(Node())

    def test_detach(self):
        p, c = Node(), Node()
        p.add_child(c)
        assert c.detach() is c
        assert c.parent is None

    def test_detach_root_noop(self):
        n = Node()
        assert n.detach() is n

    def test_degree(self):
        ns = TaxonNamespace(["A", "B"])
        root = Node()
        a = root.add_child(Node(ns["A"]))
        root.add_child(Node(ns["B"]))
        assert root.degree == 2
        assert a.degree == 1

    def test_siblings(self):
        p = Node()
        a, b, c = Node(), Node(), Node()
        for x in (a, b, c):
            p.add_child(x)
        assert list(b.siblings()) == [a, c]
        assert list(Node().siblings()) == []

    def test_ancestors(self, caterpillar):
        deepest = next(leaves(caterpillar.root))
        chain = list(deepest.ancestors())
        assert chain[-1] is caterpillar.root
        assert len(chain) == 4


class TestTraversals:
    def _labels(self, nodes):
        return [n.taxon.label if n.taxon else "*" for n in nodes]

    def test_preorder_root_first(self, caterpillar):
        out = self._labels(preorder(caterpillar.root))
        assert out[0] == "*"
        assert out == ["*", "*", "*", "*", "A", "B", "C", "D", "E"]

    def test_postorder_children_first(self, caterpillar):
        out = self._labels(postorder(caterpillar.root))
        assert out[-1] == "*"
        assert out == ["A", "B", "*", "C", "*", "D", "*", "E", "*"]

    def test_levelorder(self, caterpillar):
        out = self._labels(levelorder(caterpillar.root))
        assert out == ["*", "*", "E", "*", "D", "*", "C", "A", "B"]

    def test_leaves_in_input_order(self, caterpillar):
        assert self._labels(leaves(caterpillar.root)) == ["A", "B", "C", "D", "E"]

    def test_internal_nodes_count(self, caterpillar):
        assert sum(1 for _ in internal_nodes(caterpillar.root)) == 4

    def test_edges_count(self, caterpillar):
        # n_nodes - 1 edges in a tree.
        n_nodes = sum(1 for _ in preorder(caterpillar.root))
        assert sum(1 for _ in edges(caterpillar.root)) == n_nodes - 1

    def test_edges_are_parent_child(self, caterpillar):
        for parent, child in edges(caterpillar.root):
            assert child.parent is parent

    def test_single_node(self):
        lone = Node()
        assert list(preorder(lone)) == [lone]
        assert list(postorder(lone)) == [lone]
        assert list(levelorder(lone)) == [lone]

    def test_deep_tree_no_recursion_error(self):
        # 3000-deep ladder: iterative traversals must not blow the stack.
        root = Node()
        node = root
        for _ in range(3000):
            node = node.add_child(Node())
        assert sum(1 for _ in postorder(root)) == 3001
        assert sum(1 for _ in preorder(root)) == 3001
