"""Unit tests for repro.trees.taxon."""

import pytest

from repro.trees.taxon import Taxon, TaxonNamespace
from repro.util.errors import TaxonError


class TestRequire:
    def test_assigns_sequential_indices(self):
        ns = TaxonNamespace()
        a = ns.require("A")
        b = ns.require("B")
        assert (a.index, b.index) == (0, 1)

    def test_idempotent(self):
        ns = TaxonNamespace()
        assert ns.require("A") is ns.require("A")
        assert len(ns) == 1

    def test_init_labels(self):
        ns = TaxonNamespace(["X", "Y", "Z"])
        assert ns.labels == ["X", "Y", "Z"]

    def test_rejects_empty_label(self):
        with pytest.raises(TaxonError):
            TaxonNamespace().require("")

    def test_rejects_non_string(self):
        with pytest.raises(TaxonError):
            TaxonNamespace().require(7)  # type: ignore[arg-type]


class TestLookup:
    def test_getitem_by_label_and_index(self):
        ns = TaxonNamespace(["A", "B"])
        assert ns["B"].index == 1
        assert ns[0].label == "A"

    def test_missing_label(self):
        with pytest.raises(TaxonError):
            TaxonNamespace(["A"])["Z"]

    def test_index_out_of_range(self):
        with pytest.raises(TaxonError):
            TaxonNamespace(["A"])[5]

    def test_bad_key_type(self):
        with pytest.raises(TypeError):
            TaxonNamespace(["A"])[1.5]  # type: ignore[index]

    def test_contains(self):
        ns = TaxonNamespace(["A"])
        assert "A" in ns
        assert "B" not in ns
        assert 0 not in ns  # only string membership

    def test_get_returns_none(self):
        assert TaxonNamespace(["A"]).get("B") is None

    def test_iteration_order(self):
        ns = TaxonNamespace(["C", "A", "B"])
        assert [t.label for t in ns] == ["C", "A", "B"]


class TestMasks:
    def test_taxon_bit(self):
        ns = TaxonNamespace(["A", "B", "C"])
        assert ns["C"].bit == 0b100

    def test_full_mask(self):
        assert TaxonNamespace(["A", "B", "C"]).full_mask() == 0b111
        assert TaxonNamespace().full_mask() == 0

    def test_mask_of(self):
        ns = TaxonNamespace(["A", "B", "C", "D"])
        assert ns.mask_of(["A", "C"]) == 0b0101

    def test_mask_of_unknown_label(self):
        with pytest.raises(TaxonError):
            TaxonNamespace(["A"]).mask_of(["B"])

    def test_labels_of(self):
        ns = TaxonNamespace(["A", "B", "C", "D"])
        assert ns.labels_of(0b1010) == ["B", "D"]
        assert ns.labels_of(0) == []

    def test_labels_of_out_of_range(self):
        with pytest.raises(TaxonError):
            TaxonNamespace(["A"]).labels_of(0b10)

    def test_mask_roundtrip(self):
        ns = TaxonNamespace([f"t{i}" for i in range(12)])
        mask = ns.mask_of(["t1", "t5", "t11"])
        assert ns.mask_of(ns.labels_of(mask)) == mask


class TestCompatibility:
    def test_superset_same(self):
        ns = TaxonNamespace(["A", "B"])
        assert ns.is_superset_of(ns)

    def test_superset_extension(self):
        small = TaxonNamespace(["A", "B"])
        big = TaxonNamespace(["A", "B", "C"])
        assert big.is_superset_of(small)
        assert not small.is_superset_of(big)

    def test_index_mismatch_not_superset(self):
        a = TaxonNamespace(["A", "B"])
        b = TaxonNamespace(["B", "A"])
        assert not a.is_superset_of(b)

    def test_union(self):
        a = TaxonNamespace(["A", "B"])
        b = TaxonNamespace(["B", "C"])
        merged = TaxonNamespace.union([a, b])
        assert merged.labels == ["A", "B", "C"]
