"""Unit tests for repro.trees.tree."""

import pytest

from repro.bipartitions import bipartition_masks
from repro.newick import parse_newick, write_newick
from repro.trees import TaxonNamespace
from repro.util.errors import TreeStructureError

from tests.conftest import make_random_tree


class TestShape:
    def test_n_leaves(self):
        assert parse_newick("((A,B),(C,D));").n_leaves == 4

    def test_n_nodes(self):
        assert parse_newick("((A,B),(C,D));").n_nodes == 7

    def test_leaf_labels_in_order(self):
        assert parse_newick("((A,B),(C,D));").leaf_labels() == ["A", "B", "C", "D"]

    def test_leaf_mask_full(self):
        t = parse_newick("((A,B),(C,D));")
        assert t.leaf_mask() == t.taxon_namespace.full_mask()

    def test_leaf_mask_partial(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        t = parse_newick("((A,B),C);", ns)
        assert t.leaf_mask() == 0b00111

    def test_is_binary_true(self):
        assert parse_newick("((A,B),(C,D));").is_binary()
        assert parse_newick("((A,B),C,D);").is_binary()  # trifurcating root ok

    def test_is_binary_false_polytomy(self):
        assert not parse_newick("(A,B,C,D);").is_binary()
        assert not parse_newick("((A,B,C),(D,E));").is_binary()

    def test_is_rooted_shape(self):
        assert parse_newick("((A,B),(C,D));").is_rooted_shape()
        assert not parse_newick("((A,B),C,D);").is_rooted_shape()


class TestCopy:
    def test_copy_is_deep(self):
        t = make_random_tree(10, seed=3)
        c = t.copy()
        original_ids = {id(n) for n in t.preorder()}
        assert all(id(n) not in original_ids for n in c.preorder())

    def test_copy_preserves_topology_and_lengths(self):
        t = make_random_tree(12, seed=4)
        c = t.copy()
        assert write_newick(t) == write_newick(c)
        assert bipartition_masks(t) == bipartition_masks(c)

    def test_copy_shares_namespace(self):
        t = make_random_tree(6, seed=5)
        assert t.copy().taxon_namespace is t.taxon_namespace

    def test_mutating_copy_leaves_original(self):
        t = parse_newick("((A,B),(C,D));")
        c = t.copy()
        c.root.children[0].children[0].taxon = None
        assert t.leaf_labels() == ["A", "B", "C", "D"]


class TestDeroot:
    def test_deroot_bifurcating_root(self):
        t = parse_newick("((A,B),(C,D));")
        t.deroot()
        assert len(t.root.children) == 3
        assert not t.is_rooted_shape()

    def test_deroot_preserves_bipartitions(self):
        t = parse_newick("(((A,B),(C,D)),(E,F));")
        before = bipartition_masks(t)
        t.deroot()
        assert bipartition_masks(t) == before

    def test_deroot_sums_lengths(self):
        t = parse_newick("((A:1,B:1):2,(C:1,D:1):3);")
        t.deroot()
        # The two root-edge lengths merge onto the surviving edge.
        internal = [c for c in t.root.children if not c.is_leaf]
        assert len(internal) == 1
        assert internal[0].length == pytest.approx(5.0)

    def test_deroot_noop_on_trifurcation(self):
        t = parse_newick("((A,B),C,D);")
        before = write_newick(t)
        t.deroot()
        assert write_newick(t) == before

    def test_deroot_two_leaf_tree_noop(self):
        t = parse_newick("(A,B);")
        t.deroot()
        assert t.n_leaves == 2


class TestLeafErrors:
    def test_leaf_without_taxon_raises_in_labels(self):
        t = parse_newick("((A,B),(C,D));")
        for leaf in t.leaves():
            leaf.taxon = None
            break
        with pytest.raises(TreeStructureError):
            t.leaf_labels()
        with pytest.raises(TreeStructureError):
            t.leaf_mask()
