"""Unit tests for repro.trees.validate."""

import pytest

from repro.newick import parse_newick, trees_from_string
from repro.trees import TaxonNamespace
from repro.trees.validate import check_shared_namespace, validate_collection, validate_tree
from repro.util.errors import CollectionError, TaxonError, TreeStructureError


class TestValidateTree:
    def test_accepts_good_tree(self):
        t = parse_newick("((A,B),(C,D));")
        assert validate_tree(t, require_binary=True) is t

    def test_detects_broken_parent_pointer(self):
        t = parse_newick("((A,B),(C,D));")
        t.root.children[0].parent = None
        with pytest.raises(TreeStructureError):
            validate_tree(t)

    def test_detects_missing_taxon(self):
        t = parse_newick("((A,B),(C,D));")
        next(t.leaves()).taxon = None
        with pytest.raises(TreeStructureError):
            validate_tree(t)

    def test_detects_duplicate_taxon(self):
        t = parse_newick("((A,B),(C,D));")
        leaves = list(t.leaves())
        leaves[1].taxon = leaves[0].taxon
        with pytest.raises(TaxonError):
            validate_tree(t)

    def test_min_leaves(self):
        t = parse_newick("(A,B);")
        with pytest.raises(TreeStructureError):
            validate_tree(t, min_leaves=3)

    def test_require_binary_rejects_polytomy(self):
        t = parse_newick("(A,B,C,D,E);")
        with pytest.raises(TreeStructureError):
            validate_tree(t, require_binary=True)


class TestSharedNamespace:
    def test_accepts_shared(self):
        trees = trees_from_string("((A,B),(C,D));\n((A,C),(B,D));")
        check_shared_namespace(trees)

    def test_rejects_disjoint_namespaces(self):
        t1 = parse_newick("((A,B),(C,D));")
        t2 = parse_newick("((A,B),(C,D));")  # fresh namespace
        with pytest.raises(TaxonError):
            check_shared_namespace([t1, t2])

    def test_empty_ok(self):
        check_shared_namespace([])


class TestValidateCollection:
    def test_accepts_uniform_collection(self, medium_collection):
        validate_collection(medium_collection)

    def test_rejects_empty(self):
        with pytest.raises(CollectionError):
            validate_collection([])

    def test_rejects_mixed_taxa_by_default(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        t1 = parse_newick("((A,B),(C,D));", ns)
        t2 = parse_newick("((A,B),(C,E));", ns)
        with pytest.raises(CollectionError):
            validate_collection([t1, t2])

    def test_allows_mixed_taxa_when_disabled(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        t1 = parse_newick("((A,B),(C,D));", ns)
        t2 = parse_newick("((A,B),(C,E));", ns)
        validate_collection([t1, t2], require_same_taxa=False)

    def test_require_binary_propagates(self):
        ns = TaxonNamespace(["A", "B", "C", "D", "E"])
        t = parse_newick("(A,B,C,D,E);", ns)
        with pytest.raises(TreeStructureError):
            validate_collection([t], require_binary=True)
