"""Unit tests for repro.util.chunking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.chunking import (
    balanced_chunk_count,
    chunk_indices,
    chunked,
    default_chunk_size,
    split_evenly,
)


class TestDefaultChunkSize:
    def test_basic(self):
        assert default_chunk_size(1000, 4) == 62 or default_chunk_size(1000, 4) > 0

    def test_small_items(self):
        assert default_chunk_size(3, 8) == 1

    def test_zero_items(self):
        assert default_chunk_size(0, 4) == 1

    def test_respects_max(self):
        assert default_chunk_size(10_000_000, 1, max_size=2048) == 2048

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            default_chunk_size(10, 0)

    @given(st.integers(0, 100_000), st.integers(1, 64))
    def test_always_positive(self, n, w):
        assert default_chunk_size(n, w) >= 1


class TestChunkIndices:
    def test_exact_division(self):
        assert list(chunk_indices(6, 3)) == [(0, 3), (3, 6)]

    def test_remainder(self):
        assert list(chunk_indices(7, 3)) == [(0, 3), (3, 6), (6, 7)]

    def test_empty(self):
        assert list(chunk_indices(0, 3)) == []

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_indices(5, 0))

    @given(st.integers(0, 500), st.integers(1, 50))
    def test_cover_exactly(self, n, size):
        ranges = list(chunk_indices(n, size))
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(n))


class TestChunked:
    def test_basic(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_streaming_iterator(self):
        it = iter(range(10))
        first = next(chunked(it, 3))
        assert first == [0, 1, 2]
        # The source iterator advanced only by one chunk.
        assert next(it) == 3

    def test_empty(self):
        assert list(chunked([], 4)) == []

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.lists(st.integers(), max_size=100), st.integers(1, 17))
    def test_concatenation_identity(self, items, size):
        blocks = list(chunked(items, size))
        assert [x for b in blocks for x in b] == items
        assert all(1 <= len(b) <= size for b in blocks)


class TestBalancedChunkCount:
    def test_values(self):
        assert balanced_chunk_count(10, 3) == 4
        assert balanced_chunk_count(9, 3) == 3
        assert balanced_chunk_count(0, 3) == 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            balanced_chunk_count(5, 0)


class TestSplitEvenly:
    def test_basic(self):
        assert split_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_parts_than_items(self):
        assert split_evenly([1], 3) == [[1], [], []]

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_evenly([1], 0)

    @given(st.lists(st.integers(), max_size=60), st.integers(1, 10))
    def test_partition_properties(self, items, parts):
        out = split_evenly(items, parts)
        assert len(out) == parts
        assert [x for part in out for x in part] == items
        sizes = [len(p) for p in out]
        assert max(sizes) - min(sizes) <= 1
