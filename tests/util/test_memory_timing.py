"""Unit tests for repro.util.memory and repro.util.timing."""

import math
import time

import pytest

from repro.util.memory import (
    MemoryProbe,
    _read_vm_hwm_mb,
    reset_rss_peak,
    rss_peak_mb,
    trace_peak,
)
from repro.util.timing import Stopwatch, estimate_total_seconds, format_seconds, stopwatch


class TestTracePeak:
    def test_detects_allocation(self):
        with trace_peak() as sample:
            block = [0] * 2_000_000  # ~16 MB of pointers
            del block
        assert sample.peak_mb > 5.0
        assert sample.current_mb < sample.peak_mb

    def test_retained_allocation(self):
        with trace_peak() as sample:
            keep = bytearray(8_000_000)
        assert sample.current_mb > 5.0
        del keep

    def test_nested(self):
        with trace_peak() as outer:
            with trace_peak() as inner:
                data = bytearray(4_000_000)
            del data
        assert inner.peak_mb > 2.0
        assert outer.peak_mb >= inner.peak_mb - 0.5

    def test_no_allocation_near_zero(self):
        with trace_peak() as sample:
            pass
        assert sample.peak_mb < 1.0


class TestRssPeak:
    def test_positive(self):
        assert rss_peak_mb() > 1.0

    def test_monotone(self):
        a = rss_peak_mb()
        b = rss_peak_mb()
        assert b >= a


class TestMemoryProbe:
    def test_trace_mode(self):
        probe = MemoryProbe("trace")
        with probe.measure() as sample:
            data = bytearray(4_000_000)
        assert sample.peak_mb > 2.0
        del data

    def test_rss_mode_runs(self):
        probe = MemoryProbe("rss")
        with probe.measure() as sample:
            pass
        assert sample.peak_mb >= 0.0

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            MemoryProbe("vibes")

    def test_rss_mode_attributes_block_after_larger_prior_peak(self):
        """The VmHWM-reset fix: a block allocating less than an *earlier*
        process peak must still report its own allocation, not zero."""
        if not reset_rss_peak():
            pytest.skip("/proc/self/clear_refs unavailable")
        big = bytearray(96 * 1024 * 1024)
        del big
        probe = MemoryProbe("rss")
        with probe.measure() as sample:
            small = bytearray(32 * 1024 * 1024)
        del small
        assert sample.peak_mb == pytest.approx(32.0, abs=8.0)


class TestVmHwm:
    def test_read_matches_rss_peak(self):
        hwm = _read_vm_hwm_mb()
        if hwm is None:
            pytest.skip("/proc/self/status unavailable")
        assert hwm > 1.0
        assert rss_peak_mb() == pytest.approx(hwm, rel=0.5)

    def test_reset_lowers_watermark(self):
        if not reset_rss_peak():
            pytest.skip("/proc/self/clear_refs unavailable")
        blob = bytearray(64 * 1024 * 1024)
        del blob
        high = rss_peak_mb()
        assert reset_rss_peak()
        assert rss_peak_mb() <= high


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_helper(self):
        with stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.005

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset_zeroes_and_stops(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        sw.start()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running
        sw.start()  # usable again after reset mid-run
        sw.stop()


class TestEstimate:
    def test_linear_extrapolation(self):
        assert estimate_total_seconds(10.0, 5, 50) == 100.0

    def test_identity_when_complete(self):
        assert estimate_total_seconds(7.0, 10, 10) == 7.0

    def test_rejects_zero_done(self):
        with pytest.raises(ValueError):
            estimate_total_seconds(1.0, 0, 10)

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            estimate_total_seconds(1.0, 10, 5)


class TestFormatSeconds:
    @pytest.mark.parametrize("value,expected", [
        (0.0042, "4.2ms"),
        (3.25, "3.25s"),
        (312, "5.20m"),
        (0.999, "999.0ms"),
        (3599, "59.98m"),
        (3600, "1.00h"),
        (7200, "2.00h"),
        (5400, "1.50h"),
    ])
    def test_rendering(self, value, expected):
        assert format_seconds(value) == expected
