"""Unit tests for repro.util.memory and repro.util.timing."""

import math
import time

import pytest

from repro.util.memory import MemoryProbe, rss_peak_mb, trace_peak
from repro.util.timing import Stopwatch, estimate_total_seconds, format_seconds, stopwatch


class TestTracePeak:
    def test_detects_allocation(self):
        with trace_peak() as sample:
            block = [0] * 2_000_000  # ~16 MB of pointers
            del block
        assert sample.peak_mb > 5.0
        assert sample.current_mb < sample.peak_mb

    def test_retained_allocation(self):
        with trace_peak() as sample:
            keep = bytearray(8_000_000)
        assert sample.current_mb > 5.0
        del keep

    def test_nested(self):
        with trace_peak() as outer:
            with trace_peak() as inner:
                data = bytearray(4_000_000)
            del data
        assert inner.peak_mb > 2.0
        assert outer.peak_mb >= inner.peak_mb - 0.5

    def test_no_allocation_near_zero(self):
        with trace_peak() as sample:
            pass
        assert sample.peak_mb < 1.0


class TestRssPeak:
    def test_positive(self):
        assert rss_peak_mb() > 1.0

    def test_monotone(self):
        a = rss_peak_mb()
        b = rss_peak_mb()
        assert b >= a


class TestMemoryProbe:
    def test_trace_mode(self):
        probe = MemoryProbe("trace")
        with probe.measure() as sample:
            data = bytearray(4_000_000)
        assert sample.peak_mb > 2.0
        del data

    def test_rss_mode_runs(self):
        probe = MemoryProbe("rss")
        with probe.measure() as sample:
            pass
        assert sample.peak_mb >= 0.0

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            MemoryProbe("vibes")


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_helper(self):
        with stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.005


class TestEstimate:
    def test_linear_extrapolation(self):
        assert estimate_total_seconds(10.0, 5, 50) == 100.0

    def test_identity_when_complete(self):
        assert estimate_total_seconds(7.0, 10, 10) == 7.0

    def test_rejects_zero_done(self):
        with pytest.raises(ValueError):
            estimate_total_seconds(1.0, 0, 10)

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            estimate_total_seconds(1.0, 10, 5)


class TestFormatSeconds:
    @pytest.mark.parametrize("value,expected", [
        (0.0042, "4.2ms"),
        (3.25, "3.25s"),
        (312, "5.20m"),
        (0.999, "999.0ms"),
    ])
    def test_rendering(self, value, expected):
        assert format_seconds(value) == expected
