"""Unit tests for repro.util.records."""

import math

from repro.util.records import ExperimentTable, RunRecord


def _record(**overrides):
    base = dict(algorithm="BFHRF8", n_taxa=48, n_trees=1000,
                seconds=1.5, memory_mb=42.0)
    base.update(overrides)
    return RunRecord(**base)


class TestRunRecord:
    def test_time_label_plain(self):
        assert _record().time_label == "1.5000"

    def test_time_label_estimated(self):
        assert _record(estimated=True).time_label == "~1.5000"

    def test_time_label_killed(self):
        assert _record(killed=True).time_label == "1.5000*"

    def test_time_label_missing(self):
        assert _record(seconds=float("nan")).time_label == "-"

    def test_memory_label(self):
        assert _record().memory_label == "42.00"
        assert _record(memory_mb=float("nan")).memory_label == "-"
        assert _record(killed=True).memory_label == "42.00*"

    def test_to_dict_roundtrip(self):
        d = _record(extra={"workers": 8}).to_dict()
        assert d["algorithm"] == "BFHRF8"
        assert d["extra"] == {"workers": 8}


class TestExperimentTable:
    def test_render_contains_rows_and_notes(self):
        table = ExperimentTable("Table III (scaled)")
        table.add(_record())
        table.add(_record(algorithm="DS", seconds=200.0, memory_mb=900.0))
        table.note("scaled to r=1000")
        text = table.render()
        assert "Table III (scaled)" in text
        assert "BFHRF8" in text
        assert "DS" in text
        assert "note: scaled to r=1000" in text
        assert "Algorithm" in text.splitlines()[2]

    def test_by_algorithm(self):
        table = ExperimentTable("t")
        table.add(_record())
        table.add(_record(algorithm="DS"))
        table.add(_record(n_trees=2000))
        assert len(table.by_algorithm("BFHRF8")) == 2
        assert len(table.by_algorithm("DS")) == 1
        assert table.by_algorithm("nope") == []

    def test_render_alignment(self):
        table = ExperimentTable("t")
        table.add(_record(algorithm="A"))
        table.add(_record(algorithm="LONGNAME16"))
        lines = table.render().splitlines()
        data_lines = lines[2:]
        # Header and all rows share the same width.
        widths = {len(line) for line in data_lines if line and not line.startswith("note")}
        assert len(widths) <= 2  # header separator may differ by trailing spaces
