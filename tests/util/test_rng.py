"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, resolve_rng, spawn_children


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = resolve_rng(42).integers(1 << 40)
        b = resolve_rng(42).integers(1 << 40)
        assert a == b

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(1 << 40)
        b = resolve_rng(2).integers(1 << 40)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert resolve_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(resolve_rng(np.int64(5)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")  # type: ignore[arg-type]


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(3, 5)) == 5

    def test_deterministic(self):
        a = [g.integers(1 << 30) for g in spawn_children(9, 3)]
        b = [g.integers(1 << 30) for g in spawn_children(9, 3)]
        assert a == b

    def test_children_independent(self):
        kids = spawn_children(11, 4)
        draws = [int(g.integers(1 << 60)) for g in kids]
        assert len(set(draws)) == 4

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, [1, 2]) == derive_seed(5, [1, 2])

    def test_word_sensitivity(self):
        assert derive_seed(5, [1, 2]) != derive_seed(5, [2, 1])

    def test_range(self):
        s = derive_seed(123, [99])
        assert 0 <= s < 1 << 63

    def test_usable_as_numpy_seed(self):
        np.random.default_rng(derive_seed(1, [7]))
